(* Tests for the feature library: diagrams, configurations, counting. *)

open Feature
open Feature.Tree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A small model exercising every group kind:

   car
   |-- * engine <xor> petrol | electric
   |-- o radio
   |       `-- * speakers
   `-- <or> comfort: heating | cooling            *)
let car =
  feature "car"
    [
      mandatory (feature "engine" [ Alt_group [ leaf "petrol"; leaf "electric" ] ]);
      optional (feature "radio" [ mandatory (leaf "speakers") ]);
      Or_group [ leaf "heating"; leaf "cooling" ];
    ]

let car_model =
  Model.make
    ~constraints:
      [ Model.Requires ("radio", "electric"); Model.Excludes ("petrol", "cooling") ]
    car

let config names = Config.of_names names

(* --- Tree -------------------------------------------------------------------- *)

let test_counts () =
  check_int "feature count" 8 (Tree.feature_count car);
  check_int "depth" 3 (Tree.depth car)

let test_find_and_parent () =
  check_bool "find speakers" true (Tree.find car "speakers" <> None);
  check_bool "find nothing" true (Tree.find car "wheels" = None);
  (match Tree.parent car "speakers" with
   | Some p -> check_string "parent of speakers" "radio" p.name
   | None -> Alcotest.fail "parent expected");
  check_bool "root has no parent" true (Tree.parent car "car" = None)

let test_names_preorder () =
  Alcotest.(check (list string)) "pre-order"
    [ "car"; "engine"; "petrol"; "electric"; "radio"; "speakers"; "heating"; "cooling" ]
    (Tree.names car)

let test_duplicates () =
  let dup = feature "x" [ mandatory (leaf "a"); optional (leaf "a") ] in
  Alcotest.(check (list string)) "duplicate reported" [ "a" ] (Tree.duplicate_names dup);
  Alcotest.(check (list string)) "car clean" [] (Tree.duplicate_names car)

let test_cardinality_pp () =
  check_string "1..*" "[1..*]" (Fmt.str "%a" Tree.pp_cardinality Tree.one_or_more);
  check_string "fixed" "[2]"
    (Fmt.str "%a" Tree.pp_cardinality { Tree.min = 2; max = Some 2 });
  check_string "range" "[1..3]"
    (Fmt.str "%a" Tree.pp_cardinality { Tree.min = 1; max = Some 3 })

(* --- Model ------------------------------------------------------------------- *)

let test_model_check () =
  Alcotest.(check int) "car model clean" 0 (List.length (Model.check car_model));
  let bad =
    Model.make ~constraints:[ Model.Requires ("radio", "warp-drive") ] car
  in
  check_bool "unknown feature in constraint" true
    (List.exists
       (function Model.Constraint_on_unknown_feature "warp-drive" -> true | _ -> false)
       (Model.check bad))

let test_requires_of () =
  Alcotest.(check (list string)) "requires" [ "electric" ]
    (Model.requires_of car_model "radio")

(* --- Config validation ---------------------------------------------------------- *)

let valid_config = config [ "car"; "engine"; "electric"; "heating" ]

let test_valid () =
  Alcotest.(check int) "no violations" 0
    (List.length (Config.validate car_model valid_config))

let test_concept_required () =
  let c = config [ "engine"; "electric"; "heating" ] in
  check_bool "concept missing" true
    (List.exists
       (function Config.Concept_not_selected _ -> true | _ -> false)
       (Config.validate car_model c))

let test_unknown_feature () =
  let c = Config.union valid_config (config [ "wings" ]) in
  check_bool "unknown" true
    (List.exists
       (function Config.Unknown_feature "wings" -> true | _ -> false)
       (Config.validate car_model c))

let test_mandatory_child () =
  let c = config [ "car"; "heating" ] in
  check_bool "engine missing" true
    (List.exists
       (function
         | Config.Mandatory_child_missing { child = "engine"; _ } -> true
         | _ -> false)
       (Config.validate car_model c))

let test_alt_group_exactly_one () =
  let zero = config [ "car"; "engine"; "heating" ] in
  let two = config [ "car"; "engine"; "petrol"; "electric"; "heating" ] in
  let violation c =
    List.exists
      (function Config.Alt_group_violation _ -> true | _ -> false)
      (Config.validate car_model c)
  in
  check_bool "zero selected" true (violation zero);
  check_bool "two selected" true (violation two);
  check_bool "one selected ok" false (violation valid_config)

let test_or_group_at_least_one () =
  let none = config [ "car"; "engine"; "electric" ] in
  check_bool "or violation" true
    (List.exists
       (function Config.Or_group_violation _ -> true | _ -> false)
       (Config.validate car_model none));
  let both = config [ "car"; "engine"; "electric"; "heating"; "cooling" ] in
  check_bool "both members fine" false
    (List.exists
       (function Config.Or_group_violation _ -> true | _ -> false)
       (Config.validate car_model both))

let test_orphan () =
  let c = Config.union valid_config (config [ "speakers" ]) in
  check_bool "parent not selected" true
    (List.exists
       (function
         | Config.Parent_not_selected { feature = "speakers"; parent = "radio" } -> true
         | _ -> false)
       (Config.validate car_model c))

let test_requires_excludes () =
  let needs = config [ "car"; "engine"; "petrol"; "radio"; "speakers"; "heating" ] in
  let violations = Config.validate car_model needs in
  check_bool "requires violated" true
    (List.exists
       (function
         | Config.Requires_violation { feature = "radio"; missing = "electric" } -> true
         | _ -> false)
       violations);
  let clash = config [ "car"; "engine"; "petrol"; "cooling" ] in
  check_bool "excludes violated" true
    (List.exists
       (function Config.Excludes_violation _ -> true | _ -> false)
       (Config.validate car_model clash))

let test_close () =
  let closed = Config.close car_model (config [ "speakers"; "heating" ]) in
  List.iter
    (fun f -> check_bool (f ^ " pulled in") true (Config.mem f closed))
    [ "car"; "radio"; "speakers"; "electric"; "engine" ]
(* radio requires electric; engine is a mandatory child of car. *)

let test_full_config () =
  check_int "full has everything" 8 (Config.cardinal (Config.full car_model))

let test_sample_validity () =
  (* Samples are valid by construction for constraint-free models; with
     constraints the requires-closure may clash with ALT groups and samples
     must be re-validated (documented in Config.sample). *)
  let no_constraints = Model.make car in
  for seed = 0 to 49 do
    let c = Config.sample no_constraints ~seed in
    match Config.validate no_constraints c with
    | [] -> ()
    | vs ->
      Alcotest.failf "seed %d invalid: %a" seed
        Fmt.(list ~sep:comma Config.pp_violation)
        vs
  done

let test_sample_deterministic () =
  let a = Config.sample car_model ~seed:42 in
  let b = Config.sample car_model ~seed:42 in
  Alcotest.(check (list string)) "same seed, same config" (Config.to_names a)
    (Config.to_names b)

(* --- Counting ----------------------------------------------------------------------- *)

let test_count_car () =
  (* engine: 2 (xor); radio: optional(1 + 1) = 2; or-group {heating,cooling}:
     2*2 - 1 = 3.  Total = 2 * 2 * 3 = 12. *)
  check_string "car products" "12" (Bignum.to_string (Count.products car))

let test_count_leaf () =
  check_string "leaf has one product" "1" (Bignum.to_string (Count.products (leaf "x")))

let test_count_overflows_native () =
  (* 70 optional children: 2^70 products, which exceeds max_int. *)
  let wide =
    feature "wide"
      (List.init 70 (fun i -> optional (leaf (Printf.sprintf "f%d" i))))
  in
  let n = Count.products wide in
  check_bool "does not fit in int" true (Bignum.to_int_opt n = None);
  check_string "2^70" "1180591620717411303424" (Bignum.to_string n)

let test_count_sql_model () =
  let n = Count.products Sql.Model.model.Model.concept in
  check_bool "astronomically many SQL dialects" true (Bignum.digits n > 15)

(* --- Bignum -------------------------------------------------------------------------- *)

let test_bignum_roundtrip () =
  List.iter
    (fun s -> check_string s s (Bignum.to_string (Bignum.of_string s)))
    [ "0"; "7"; "1000000000"; "123456789012345678901234567890" ]

let test_bignum_arith () =
  let a = Bignum.of_string "999999999999999999" in
  let b = Bignum.add a Bignum.one in
  check_string "carry chain" "1000000000000000000" (Bignum.to_string b);
  check_string "multiplication" "999999999999999999000000000000000000"
    (Bignum.to_string (Bignum.mul a (Bignum.of_string "1000000000000000000")));
  check_string "pred" "999999999999999999" (Bignum.to_string (Bignum.pred b));
  check_string "pred zero saturates" "0" (Bignum.to_string (Bignum.pred Bignum.zero))

let test_bignum_compare () =
  check_bool "ordering" true
    (Bignum.compare (Bignum.of_int 5) (Bignum.of_string "1000000000000") < 0);
  check_bool "equal" true (Bignum.equal (Bignum.of_int 42) (Bignum.of_string "42"))

let test_bignum_to_int () =
  Alcotest.(check (option int)) "small" (Some 12345)
    (Bignum.to_int_opt (Bignum.of_int 12345))

(* --- Diagram rendering ----------------------------------------------------------------- *)

let test_diagram_render () =
  let s = Diagram.render car in
  check_bool "root first" true (String.length s > 0 && String.sub s 0 3 = "car");
  check_bool "mandatory marker" true (Astring_contains.contains s "* engine");
  check_bool "optional marker" true (Astring_contains.contains s "o radio");
  check_bool "xor arc" true (Astring_contains.contains s "<xor>");
  check_bool "or arc" true (Astring_contains.contains s "<or>")

let test_diagram_checkboxes () =
  let s = Diagram.render_selected valid_config car in
  check_bool "selected box" true (Astring_contains.contains s "[x] ");
  check_bool "unselected box" true (Astring_contains.contains s "[ ] ")

let test_diagram_cardinality_shown () =
  let t = feature "list" [ mandatory (leaf ~card:Tree.one_or_more "item") ] in
  check_bool "cardinality rendered" true
    (Astring_contains.contains (Diagram.render t) "item [1..*]")

let suite =
  [
    Alcotest.test_case "tree counts" `Quick test_counts;
    Alcotest.test_case "find and parent" `Quick test_find_and_parent;
    Alcotest.test_case "pre-order names" `Quick test_names_preorder;
    Alcotest.test_case "duplicate detection" `Quick test_duplicates;
    Alcotest.test_case "cardinality pp" `Quick test_cardinality_pp;
    Alcotest.test_case "model check" `Quick test_model_check;
    Alcotest.test_case "requires_of" `Quick test_requires_of;
    Alcotest.test_case "valid config" `Quick test_valid;
    Alcotest.test_case "concept required" `Quick test_concept_required;
    Alcotest.test_case "unknown feature" `Quick test_unknown_feature;
    Alcotest.test_case "mandatory child" `Quick test_mandatory_child;
    Alcotest.test_case "alt group exactly one" `Quick test_alt_group_exactly_one;
    Alcotest.test_case "or group at least one" `Quick test_or_group_at_least_one;
    Alcotest.test_case "orphan feature" `Quick test_orphan;
    Alcotest.test_case "requires/excludes" `Quick test_requires_excludes;
    Alcotest.test_case "closure" `Quick test_close;
    Alcotest.test_case "full config" `Quick test_full_config;
    Alcotest.test_case "samples valid" `Quick test_sample_validity;
    Alcotest.test_case "samples deterministic" `Quick test_sample_deterministic;
    Alcotest.test_case "count car" `Quick test_count_car;
    Alcotest.test_case "count leaf" `Quick test_count_leaf;
    Alcotest.test_case "count beyond native int" `Quick test_count_overflows_native;
    Alcotest.test_case "count SQL model" `Quick test_count_sql_model;
    Alcotest.test_case "bignum roundtrip" `Quick test_bignum_roundtrip;
    Alcotest.test_case "bignum arithmetic" `Quick test_bignum_arith;
    Alcotest.test_case "bignum compare" `Quick test_bignum_compare;
    Alcotest.test_case "bignum to_int" `Quick test_bignum_to_int;
    Alcotest.test_case "diagram render" `Quick test_diagram_render;
    Alcotest.test_case "diagram checkboxes" `Quick test_diagram_checkboxes;
    Alcotest.test_case "diagram cardinality" `Quick test_diagram_cardinality_shown;
  ]
