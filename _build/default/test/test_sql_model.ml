(* Experiments E1–E3: the paper's decomposition statistics and Figures 1/2.

   E1 — "Overall 40 feature diagrams are obtained for SQL Foundation with
   more than 500 features" (§3.1, §5).
   E2 — Figure 1 (Query Specification feature diagram).
   E3 — Figure 2 (Table Expression feature diagram). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stats = Sql.Model.stats

let test_e1_diagram_count () =
  check_bool
    (Printf.sprintf "at least 40 diagrams (got %d)" stats.Sql.Model.diagram_count)
    true
    (stats.Sql.Model.diagram_count >= 40)

let test_e1_feature_count () =
  check_bool
    (Printf.sprintf "more than 500 features across diagrams (got %d)"
       stats.Sql.Model.features_across_diagrams)
    true
    (stats.Sql.Model.features_across_diagrams > 500);
  check_bool
    (Printf.sprintf "more than 200 distinct features (got %d)"
       stats.Sql.Model.features_in_model)
    true
    (stats.Sql.Model.features_in_model > 200)

let test_model_well_formed () =
  Alcotest.(check (list string)) "no model problems" []
    (List.map (Fmt.str "%a" Feature.Model.pp_problem) (Feature.Model.check Sql.Model.model))

let test_full_config_valid () =
  Alcotest.(check (list string)) "full config valid" []
    (List.map
       (Fmt.str "%a" Feature.Config.pp_violation)
       (Sql.Model.validate (Feature.Config.full Sql.Model.model)))

let test_every_feature_reachable_in_registry_or_organizational () =
  (* Every feature either owns a fragment or is purely organizational, and
     every fragment's owner exists in the model. *)
  let names = Feature.Tree.names Sql.Model.model.Feature.Model.concept in
  List.iter
    (fun (frag : Compose.Fragment.t) ->
      check_bool
        (Printf.sprintf "fragment %S owned by a model feature" frag.Compose.Fragment.feature)
        true
        (List.mem frag.Compose.Fragment.feature names))
    (Compose.Fragment.fragments Sql.Model.registry)

let find_diagram name =
  match Sql.Model.diagram name with
  | Some d -> d
  | None -> Alcotest.failf "diagram %S not published" name

(* E2: Figure 1 — Query Specification with optional Set Quantifier
   (ALL | DISTINCT or-group), mandatory Select List with Asterisk and
   Select Sublist [1..*] (Derived Column with optional AS), and mandatory
   Table Expression. *)
let test_e2_figure1 () =
  let d = find_diagram "Query Specification" in
  let child name = Feature.Tree.find d name in
  check_bool "has Set Quantifier" true (child "Set Quantifier" <> None);
  check_bool "has Select List" true (child "Select List" <> None);
  check_bool "has Asterisk" true (child "Asterisk" <> None);
  check_bool "has Derived Column" true (child "Derived Column" <> None);
  check_bool "has As Clause" true (child "As Clause" <> None);
  check_bool "has Table Expression" true (child "Table Expression" <> None);
  (* Set Quantifier's members are the keywords ALL and DISTINCT. *)
  (match child "Set Quantifier" with
   | Some sq ->
     Alcotest.(check (list string)) "quantifier members"
       [ "Set Quantifier"; "All"; "Distinct" ]
       (Feature.Tree.names sq)
   | None -> Alcotest.fail "set quantifier");
  (* Select Sublist carries the paper's [1..*] cardinality. *)
  (match child "Select Sublist" with
   | Some ss ->
     check_bool "cardinality 1..*" true (ss.Feature.Tree.card = Some Feature.Tree.one_or_more)
   | None -> Alcotest.fail "select sublist");
  (* Structural relations match the figure. *)
  let parent_of name =
    Option.map
      (fun (p : Feature.Tree.t) -> p.Feature.Tree.name)
      (Feature.Tree.parent d name)
  in
  Alcotest.(check (option string)) "Set Quantifier under QS"
    (Some "Query Specification") (parent_of "Set Quantifier");
  Alcotest.(check (option string)) "As Clause under Derived Column"
    (Some "Derived Column") (parent_of "As Clause")

(* E3: Figure 2 — Table Expression: mandatory From, optional Where, Group By,
   Having, Window. *)
let test_e3_figure2 () =
  let d = find_diagram "Table Expression" in
  let relation_of name =
    let parent = Feature.Tree.parent d name in
    match parent with
    | None -> Alcotest.failf "%s not under table expression" name
    | Some p ->
      List.find_map
        (fun g ->
          match g with
          | Feature.Tree.Child (rel, c) when String.equal c.Feature.Tree.name name ->
            Some rel
          | _ -> None)
        p.Feature.Tree.groups
  in
  Alcotest.(check bool) "From mandatory" true
    (relation_of "From" = Some Feature.Tree.Mandatory);
  List.iter
    (fun clause ->
      Alcotest.(check bool) (clause ^ " optional") true
        (relation_of clause = Some Feature.Tree.Optional))
    [ "Where"; "Group By"; "Having"; "Window" ]

let test_figures_render () =
  let fig1 = Feature.Diagram.render (find_diagram "Query Specification") in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in Figure 1") true (Astring_contains.contains fig1 needle))
    [
      "Query Specification"; "o Set Quantifier"; "* Select List";
      "* Select Sublist [1..*]"; "* Derived Column"; "o As Clause";
      "* Table Expression";
    ];
  let fig2 = Feature.Diagram.render (find_diagram "Table Expression") in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in Figure 2") true (Astring_contains.contains fig2 needle))
    [ "* From"; "o Where"; "o Group By"; "o Having"; "o Window" ]

let test_diagram_lookup_miss () =
  check_bool "unknown diagram" true (Sql.Model.diagram "Quantum Join" = None)

let test_products_per_diagram () =
  let counts = Feature.Count.products_per_diagram Sql.Model.diagrams in
  check_int "one count per diagram" stats.Sql.Model.diagram_count (List.length counts);
  (* Query Specification alone admits many variants. *)
  match List.assoc_opt "Query Specification" counts with
  | Some n -> check_bool "many QS variants" true (Feature.Bignum.compare n (Feature.Bignum.of_int 100) > 0)
  | None -> Alcotest.fail "QS diagram counted"

let test_close_pulls_ancestors () =
  let c = Sql.Model.close (Feature.Config.of_names [ "Epoch Duration" ]) in
  List.iter
    (fun f -> check_bool (f ^ " in closure") true (Feature.Config.mem f c))
    [ "Extension Packages"; "Acquisitional Queries"; "SQL:2003"; "Queries" ]

let suite =
  [
    Alcotest.test_case "E1: >= 40 diagrams" `Quick test_e1_diagram_count;
    Alcotest.test_case "E1: > 500 features" `Quick test_e1_feature_count;
    Alcotest.test_case "model well-formed" `Quick test_model_well_formed;
    Alcotest.test_case "full config valid" `Quick test_full_config_valid;
    Alcotest.test_case "registry consistent with model" `Quick
      test_every_feature_reachable_in_registry_or_organizational;
    Alcotest.test_case "E2: Figure 1 structure" `Quick test_e2_figure1;
    Alcotest.test_case "E3: Figure 2 structure" `Quick test_e3_figure2;
    Alcotest.test_case "figures render" `Quick test_figures_render;
    Alcotest.test_case "diagram lookup miss" `Quick test_diagram_lookup_miss;
    Alcotest.test_case "products per diagram" `Quick test_products_per_diagram;
    Alcotest.test_case "closure pulls ancestors" `Quick test_close_pulls_ancestors;
  ]
