(* Integration tests for the executor and database, driven through the full
   dialect front-end (parse -> lower -> execute). *)

module Value = Engine.Value
module Executor = Engine.Executor

let session =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g -> Core.session g
     | Error e -> Alcotest.failf "generate: %a" Core.pp_error e)

(* Each test runs against a fresh database. *)
let fresh_session () =
  Core.session (Core.session_parser (Lazy.force session))

let run s sql =
  match Core.run s sql with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "run %S: %a" sql Core.pp_error e

let run_err s sql =
  match Core.run s sql with
  | Ok _ -> Alcotest.failf "expected error: %s" sql
  | Error e -> Fmt.str "%a" Core.pp_error e

let rows s sql =
  match run s sql with
  | Executor.Rows rs -> rs.Executor.rows
  | _ -> Alcotest.failf "expected rows: %s" sql

let columns s sql =
  match run s sql with
  | Executor.Rows rs -> rs.Executor.columns
  | _ -> Alcotest.failf "expected rows: %s" sql

let affected s sql =
  match run s sql with
  | Executor.Affected n -> n
  | _ -> Alcotest.failf "expected affected count: %s" sql

let setup_items s =
  ignore (run s "CREATE TABLE items (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL, price DECIMAL(8, 2), qty INTEGER DEFAULT 0)");
  ignore (run s "INSERT INTO items (id, name, price, qty) VALUES (1, 'bolt', 0.25, 100), (2, 'nut', 0.10, 250), (3, 'gear', 12.50, 8), (4, 'axle', NULL, 2)")

let check_rows name expected actual =
  Alcotest.(check (list (list string))) name expected
    (List.map (List.map Value.to_string) actual)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_projection_and_where () =
  let s = fresh_session () in
  setup_items s;
  check_rows "filter and project"
    [ [ "bolt"; "0.25" ]; [ "nut"; "0.1" ] ]
    (rows s "SELECT name, price FROM items WHERE price < 1");
  check_rows "null price never matches" []
    (rows s "SELECT name FROM items WHERE price > 100 OR price <= 0")

let test_star_and_aliases () =
  let s = fresh_session () in
  setup_items s;
  Alcotest.(check (list string)) "star columns" [ "id"; "name"; "price"; "qty" ]
    (columns s "SELECT * FROM items");
  Alcotest.(check (list string)) "alias column" [ "label" ]
    (columns s "SELECT name AS label FROM items");
  Alcotest.(check (list string)) "expression column synthesized" [ "column1" ]
    (columns s "SELECT price * 2 FROM items")

let test_arithmetic_and_nulls () =
  let s = fresh_session () in
  setup_items s;
  check_rows "null propagates through arithmetic" [ [ "NULL" ] ]
    (rows s "SELECT price * 2 FROM items WHERE id = 4")

let test_order_by_and_limit () =
  let s = fresh_session () in
  setup_items s;
  check_rows "desc with fetch"
    [ [ "gear" ]; [ "bolt" ] ]
    (rows s "SELECT name FROM items ORDER BY price DESC FETCH FIRST 2 ROWS ONLY");
  check_rows "nulls last by default"
    [ [ "nut" ]; [ "bolt" ]; [ "gear" ]; [ "axle" ] ]
    (rows s "SELECT name FROM items ORDER BY price ASC");
  check_rows "nulls first"
    [ [ "axle" ]; [ "nut" ]; [ "bolt" ]; [ "gear" ] ]
    (rows s "SELECT name FROM items ORDER BY price ASC NULLS FIRST")

let test_distinct () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE t (a INTEGER)");
  ignore (run s "INSERT INTO t (a) VALUES (1), (2), (1), (NULL), (NULL)");
  check_int "distinct collapses nulls" 3
    (List.length (rows s "SELECT DISTINCT a FROM t"))

let test_aggregates () =
  let s = fresh_session () in
  setup_items s;
  check_rows "count star" [ [ "4" ] ] (rows s "SELECT COUNT(*) FROM items");
  check_rows "count skips nulls" [ [ "3" ] ] (rows s "SELECT COUNT(price) FROM items");
  check_rows "sum/min/max" [ [ "12.85"; "0.1"; "12.5" ] ]
    (rows s "SELECT SUM(price), MIN(price), MAX(price) FROM items");
  check_rows "avg" [ [ "175.0" ] ] (rows s "SELECT AVG(qty) FROM items WHERE qty >= 100")

let test_group_by_having () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE sales (region VARCHAR(10), amount INTEGER)");
  ignore
    (run s
       "INSERT INTO sales (region, amount) VALUES ('n', 10), ('n', 20), ('s', 5), ('s', 1), ('w', 100)");
  check_rows "group sums"
    [ [ "n"; "30" ]; [ "s"; "6" ]; [ "w"; "100" ] ]
    (rows s "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region ASC");
  check_rows "having filters groups"
    [ [ "n" ]; [ "w" ] ]
    (rows s "SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 10 ORDER BY region ASC")

let test_aggregate_without_group () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE empty_t (a INTEGER)");
  check_rows "count over empty" [ [ "0" ] ] (rows s "SELECT COUNT(*) FROM empty_t");
  check_rows "sum over empty is null" [ [ "NULL" ] ]
    (rows s "SELECT SUM(a) FROM empty_t")

let test_joins () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE t (k INTEGER, v VARCHAR(5))");
  ignore (run s "CREATE TABLE u (k INTEGER, w VARCHAR(5))");
  ignore (run s "INSERT INTO t (k, v) VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  ignore (run s "INSERT INTO u (k, w) VALUES (2, 'x'), (3, 'y'), (4, 'z')");
  check_rows "inner join"
    [ [ "b"; "x" ]; [ "c"; "y" ] ]
    (rows s "SELECT t.v, u.w FROM t INNER JOIN u ON t.k = u.k ORDER BY t.v ASC");
  check_rows "left join pads nulls"
    [ [ "a"; "NULL" ]; [ "b"; "x" ]; [ "c"; "y" ] ]
    (rows s "SELECT t.v, u.w FROM t LEFT OUTER JOIN u ON t.k = u.k ORDER BY t.v ASC");
  check_int "full outer covers both sides" 4
    (List.length (rows s "SELECT t.v, u.w FROM t FULL OUTER JOIN u ON t.k = u.k"));
  check_int "cross join" 9 (List.length (rows s "SELECT t.v FROM t CROSS JOIN u"));
  check_rows "using"
    [ [ "b"; "x" ]; [ "c"; "y" ] ]
    (rows s "SELECT v, w FROM t INNER JOIN u USING (k) ORDER BY v ASC");
  check_rows "natural join"
    [ [ "b"; "x" ]; [ "c"; "y" ] ]
    (rows s "SELECT v, w FROM t NATURAL JOIN u ORDER BY v ASC")

let test_subqueries () =
  let s = fresh_session () in
  setup_items s;
  check_rows "in subquery"
    [ [ "bolt" ]; [ "nut" ] ]
    (rows s "SELECT name FROM items WHERE id IN (SELECT id FROM items WHERE price < 1) ORDER BY name ASC");
  check_rows "correlated exists"
    [ [ "bolt" ]; [ "nut" ] ]
    (rows s "SELECT name FROM items WHERE EXISTS (SELECT id FROM items AS other WHERE other.price > items.price + 10)");
  check_rows "scalar subquery" [ [ "4" ] ]
    (rows s "SELECT (SELECT COUNT(*) FROM items) FROM items WHERE id = 1");
  check_rows "quantified all"
    [ [ "gear" ] ]
    (rows s "SELECT name FROM items WHERE price >= ALL (SELECT price FROM items WHERE price IS NOT NULL)")

let test_derived_tables_and_views () =
  let s = fresh_session () in
  setup_items s;
  check_rows "derived table"
    [ [ "bolt" ] ]
    (rows s "SELECT n FROM (SELECT name AS n, price FROM items WHERE qty = 100) AS d (n, p)");
  ignore (run s "CREATE VIEW cheap (name, price) AS SELECT name, price FROM items WHERE price < 1");
  check_rows "view rows"
    [ [ "bolt"; "0.25" ]; [ "nut"; "0.1" ] ]
    (rows s "SELECT name, price FROM cheap ORDER BY price DESC");
  ignore (run s "DROP VIEW cheap");
  check_bool "view gone" true
    (Astring_contains.contains (run_err s "SELECT name FROM cheap") "unknown table")

let test_set_operations () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE a (x INTEGER)");
  ignore (run s "CREATE TABLE b (x INTEGER)");
  ignore (run s "INSERT INTO a (x) VALUES (1), (2), (2), (3)");
  ignore (run s "INSERT INTO b (x) VALUES (2), (4)");
  check_int "union distinct" 4 (List.length (rows s "SELECT x FROM a UNION SELECT x FROM b"));
  check_int "union all" 6 (List.length (rows s "SELECT x FROM a UNION ALL SELECT x FROM b"));
  check_rows "except" [ [ "1" ]; [ "3" ] ]
    (rows s "SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x ASC");
  check_rows "intersect" [ [ "2" ] ]
    (rows s "SELECT x FROM a INTERSECT SELECT x FROM b")

let test_string_functions () =
  let s = fresh_session () in
  setup_items s;
  check_rows "string pipeline"
    [ [ "BOLT"; "bo"; "4" ] ]
    (rows s "SELECT UPPER(name), SUBSTRING(name FROM 1 FOR 2), CHAR_LENGTH(name) FROM items WHERE id = 1");
  check_rows "like"
    [ [ "bolt" ] ]
    (rows s "SELECT name FROM items WHERE name LIKE 'b%'");
  check_rows "like underscore"
    [ [ "bolt" ] ]
    (rows s "SELECT name FROM items WHERE name LIKE '_olt'");
  check_rows "case expression"
    [ [ "cheap" ]; [ "cheap" ]; [ "pricey" ]; [ "unknown" ] ]
    (rows s
       "SELECT CASE WHEN price < 1 THEN 'cheap' WHEN price >= 1 THEN 'pricey' ELSE 'unknown' END FROM items ORDER BY id ASC")

let test_insert_constraints () =
  let s = fresh_session () in
  setup_items s;
  check_bool "pk violation" true
    (Astring_contains.contains
       (run_err s "INSERT INTO items (id, name) VALUES (1, 'dup')")
       "duplicate");
  check_bool "not null violation" true
    (Astring_contains.contains
       (run_err s "INSERT INTO items (id) VALUES (9)")
       "null");
  check_int "default column filled" 1
    (affected s "INSERT INTO items (id, name) VALUES (9, 'pin')");
  check_rows "default value" [ [ "0" ] ] (rows s "SELECT qty FROM items WHERE id = 9")

let test_check_and_fk_constraints () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE parents (id INTEGER PRIMARY KEY)");
  ignore (run s "CREATE TABLE kids (id INTEGER, parent INTEGER REFERENCES parents (id), age INTEGER CHECK (age >= 0))");
  ignore (run s "INSERT INTO parents (id) VALUES (1)");
  check_int "fk ok" 1 (affected s "INSERT INTO kids (id, parent, age) VALUES (1, 1, 4)");
  check_bool "fk violation" true
    (Astring_contains.contains
       (run_err s "INSERT INTO kids (id, parent, age) VALUES (2, 99, 4)")
       "foreign key");
  check_bool "check violation" true
    (Astring_contains.contains
       (run_err s "INSERT INTO kids (id, parent, age) VALUES (3, 1, -2)")
       "CHECK")

let test_update_delete () =
  let s = fresh_session () in
  setup_items s;
  check_int "update count" 2 (affected s "UPDATE items SET qty = qty + 1 WHERE price < 1");
  check_rows "updated" [ [ "101" ]; [ "251" ] ]
    (rows s "SELECT qty FROM items WHERE price < 1 ORDER BY id ASC");
  check_int "delete count" 1 (affected s "DELETE FROM items WHERE price IS NULL");
  check_rows "remaining" [ [ "3" ] ] (rows s "SELECT COUNT(*) FROM items")

let test_insert_from_query () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "CREATE TABLE archive (id INTEGER, name VARCHAR(20))");
  check_int "insert-select" 2
    (affected s "INSERT INTO archive (id, name) SELECT id, name FROM items WHERE price < 1");
  check_rows "archived" [ [ "bolt" ]; [ "nut" ] ]
    (rows s "SELECT name FROM archive ORDER BY id ASC")

let test_merge () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE inv (sku INTEGER, qty INTEGER)");
  ignore (run s "CREATE TABLE arrivals (sku INTEGER, qty INTEGER)");
  ignore (run s "INSERT INTO inv (sku, qty) VALUES (1, 10), (2, 20)");
  ignore (run s "INSERT INTO arrivals (sku, qty) VALUES (2, 5), (3, 7)");
  check_int "merge affects 2" 2
    (affected s
       "MERGE INTO inv USING arrivals ON inv.sku = arrivals.sku WHEN MATCHED THEN UPDATE SET qty = inv.qty + arrivals.qty WHEN NOT MATCHED THEN INSERT (sku, qty) VALUES (arrivals.sku, arrivals.qty)");
  check_rows "merged"
    [ [ "1"; "10" ]; [ "2"; "25" ]; [ "3"; "7" ] ]
    (rows s "SELECT sku, qty FROM inv ORDER BY sku ASC")

let test_alter_table () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "ALTER TABLE items ADD COLUMN note VARCHAR(10) DEFAULT 'n/a'");
  check_rows "new column backfilled" [ [ "n/a" ] ]
    (rows s "SELECT note FROM items WHERE id = 1");
  ignore (run s "ALTER TABLE items DROP COLUMN note");
  check_bool "column gone" true
    (Astring_contains.contains (run_err s "SELECT note FROM items") "unknown column")

let test_transactions () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "START TRANSACTION");
  ignore (run s "DELETE FROM items");
  check_rows "emptied inside txn" [ [ "0" ] ] (rows s "SELECT COUNT(*) FROM items");
  ignore (run s "ROLLBACK");
  check_rows "restored" [ [ "4" ] ] (rows s "SELECT COUNT(*) FROM items");
  ignore (run s "START TRANSACTION");
  ignore (run s "DELETE FROM items WHERE id = 1");
  ignore (run s "COMMIT");
  check_rows "committed" [ [ "3" ] ] (rows s "SELECT COUNT(*) FROM items")

let test_savepoints () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "SAVEPOINT sp1");
  ignore (run s "DELETE FROM items WHERE id = 1");
  ignore (run s "SAVEPOINT sp2");
  ignore (run s "DELETE FROM items");
  ignore (run s "ROLLBACK TO SAVEPOINT sp2");
  check_rows "sp2 state" [ [ "3" ] ] (rows s "SELECT COUNT(*) FROM items");
  ignore (run s "ROLLBACK TO SAVEPOINT sp1");
  check_rows "sp1 state" [ [ "4" ] ] (rows s "SELECT COUNT(*) FROM items");
  check_bool "unknown savepoint" true
    (Astring_contains.contains (run_err s "ROLLBACK TO SAVEPOINT ghost") "unknown savepoint")

let test_grants_recorded () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "GRANT SELECT, UPDATE ON TABLE items TO alice");
  check_int "grant recorded" 1
    (List.length (Engine.Catalog.grants (Engine.Database.catalog (Core.database s))));
  ignore (run s "REVOKE UPDATE ON TABLE items FROM alice");
  check_int "revoked" 0
    (List.length (Engine.Catalog.grants (Engine.Database.catalog (Core.database s))))

let test_errors () =
  let s = fresh_session () in
  setup_items s;
  check_bool "unknown table" true
    (Astring_contains.contains (run_err s "SELECT a FROM ghost") "unknown table");
  check_bool "unknown column" true
    (Astring_contains.contains (run_err s "SELECT ghost FROM items") "unknown column");
  check_bool "division by zero" true
    (Astring_contains.contains (run_err s "SELECT 1 / 0 FROM items") "division");
  check_bool "duplicate table" true
    (Astring_contains.contains (run_err s "CREATE TABLE items (a INTEGER)") "exists");
  check_bool "aggregate misuse" true
    (Astring_contains.contains
       (run_err s "SELECT name FROM items WHERE SUM(price) > 1")
       "aggregate")

let test_deterministic_functions () =
  let s = fresh_session () in
  setup_items s;
  check_rows "current date is fixed" [ [ "2008-03-29"; "sqlpl" ] ]
    (rows s "SELECT CURRENT_DATE, CURRENT_USER FROM items WHERE id = 1")



let test_with_clause () =
  let s = fresh_session () in
  setup_items s;
  check_rows "simple CTE"
    [ [ "bolt" ]; [ "nut" ] ]
    (rows s
       "WITH cheap (n, p) AS (SELECT name, price FROM items WHERE price < 1) \
        SELECT n FROM cheap ORDER BY p DESC");
  check_rows "two CTEs, second sees first"
    [ [ "2" ] ]
    (rows s
       "WITH a (x) AS (SELECT id FROM items WHERE price < 1), b (y) AS \
        (SELECT COUNT(*) FROM a) SELECT y FROM b");
  check_bool "CTE does not leak into the catalog" true
    (Astring_contains.contains (run_err s "SELECT n FROM cheap") "unknown table")

let test_with_recursive () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE emp (id INTEGER, boss INTEGER)");
  ignore
    (run s "INSERT INTO emp (id, boss) VALUES (1, NULL), (2, 1), (3, 2), (4, 3), (5, 1)");
  check_rows "transitive closure from the root"
    [ [ "1" ]; [ "2" ]; [ "3" ]; [ "4" ]; [ "5" ] ]
    (rows s
       "WITH RECURSIVE reach (id) AS (SELECT id FROM emp WHERE boss IS NULL \
        UNION SELECT e.id FROM emp AS e INNER JOIN reach ON e.boss = reach.id) \
        SELECT id FROM reach ORDER BY id ASC")

let test_sequences () =
  let s = fresh_session () in
  ignore (run s "CREATE SEQUENCE ids START WITH 100 INCREMENT BY 5");
  ignore (run s "CREATE TABLE orders (id INTEGER, what VARCHAR(10))");
  ignore (run s "INSERT INTO orders (id, what) VALUES (NEXT VALUE FOR ids, 'a'), (NEXT VALUE FOR ids, 'b')");
  check_rows "sequence advances"
    [ [ "100"; "a" ]; [ "105"; "b" ] ]
    (rows s "SELECT id, what FROM orders ORDER BY id ASC");
  check_rows "select next value" [ [ "110" ] ]
    (rows s "SELECT NEXT VALUE FOR ids FROM orders WHERE what = 'a'");
  check_bool "duplicate sequence" true
    (Astring_contains.contains (run_err s "CREATE SEQUENCE ids") "exists");
  ignore (run s "DROP SEQUENCE ids");
  check_bool "dropped" true
    (Astring_contains.contains
       (run_err s "SELECT NEXT VALUE FOR ids FROM orders")
       "does not exist")

let test_sequences_transactional () =
  let s = fresh_session () in
  ignore (run s "CREATE SEQUENCE ids");
  ignore (run s "CREATE TABLE t0 (a INTEGER)");
  ignore (run s "INSERT INTO t0 (a) VALUES (0)");
  ignore (run s "START TRANSACTION");
  check_rows "first value" [ [ "1" ] ] (rows s "SELECT NEXT VALUE FOR ids FROM t0");
  ignore (run s "ROLLBACK");
  check_rows "rollback restores the counter" [ [ "1" ] ]
    (rows s "SELECT NEXT VALUE FOR ids FROM t0")

let test_overlay_and_octet_length () =
  let s = fresh_session () in
  setup_items s;
  check_rows "overlay"
    [ [ "bXXt"; "4" ] ]
    (rows s
       "SELECT OVERLAY(name PLACING 'XX' FROM 2 FOR 2), OCTET_LENGTH(name)         FROM items WHERE id = 1");
  check_rows "overlay default length"
    [ [ "bZZZ" ] ]
    (rows s "SELECT OVERLAY(name PLACING 'ZZZ' FROM 2) FROM items WHERE id = 1")

let test_interval_values () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE spans (d INTERVAL DAY TO HOUR)");
  ignore (run s "INSERT INTO spans (d) VALUES (INTERVAL '5 12' DAY TO HOUR)");
  check_rows "interval stored textually" [ [ "5 12" ] ] (rows s "SELECT d FROM spans")

let test_privilege_enforcement () =
  let s = fresh_session () in
  setup_items s;
  let db = Core.database s in
  ignore (run s "CREATE TABLE audit (who VARCHAR(10))");
  ignore (run s "GRANT SELECT ON TABLE items TO alice");
  ignore (run s "GRANT INSERT ON TABLE audit TO PUBLIC");
  Engine.Database.set_user db (Some "alice");
  check_rows "granted select works" [ [ "4" ] ] (rows s "SELECT COUNT(*) FROM items");
  check_int "public insert works" 1
    (affected s "INSERT INTO audit (who) VALUES ('alice')");
  check_bool "update denied" true
    (Astring_contains.contains
       (run_err s "UPDATE items SET qty = 0")
       "lacks UPDATE");
  check_bool "select on unlisted table denied" true
    (Astring_contains.contains (run_err s "SELECT who FROM audit") "lacks SELECT");
  check_bool "subquery reads are checked" true
    (Astring_contains.contains
       (run_err s "SELECT COUNT(*) FROM items WHERE id IN (SELECT 1 FROM audit)")
       "lacks SELECT");
  check_bool "ddl denied" true
    (Astring_contains.contains
       (run_err s "CREATE TABLE sneaky (a INTEGER)")
       "may not run");
  check_bool "grant denied" true
    (Astring_contains.contains
       (run_err s "GRANT SELECT ON TABLE audit TO alice")
       "may not run");
  (* Back to the owner session; revocation takes effect immediately. *)
  Engine.Database.set_user db None;
  ignore (run s "REVOKE SELECT ON TABLE items FROM alice");
  Engine.Database.set_user db (Some "alice");
  check_bool "revoked" true
    (Astring_contains.contains (run_err s "SELECT id FROM items") "lacks SELECT");
  Engine.Database.set_user db None

let test_session_authorization () =
  let s = fresh_session () in
  setup_items s;
  ignore (run s "GRANT SELECT ON TABLE items TO alice");
  (match run s "SET SESSION AUTHORIZATION alice" with
   | Executor.Done msg ->
     check_bool "switch message" true (Astring_contains.contains msg "alice")
   | _ -> Alcotest.fail "done expected");
  check_rows "alice can read" [ [ "4" ] ] (rows s "SELECT COUNT(*) FROM items");
  check_bool "alice cannot delete" true
    (Astring_contains.contains (run_err s "DELETE FROM items") "lacks DELETE");
  ignore (run s "RESET SESSION AUTHORIZATION");
  check_int "owner can delete again" 4 (affected s "DELETE FROM items")

let test_between_symmetric () =
  let s = fresh_session () in
  setup_items s;
  check_rows "plain between with swapped bounds is empty" [ [ "0" ] ]
    (rows s "SELECT COUNT(*) FROM items WHERE id BETWEEN 3 AND 1");
  check_rows "symmetric accepts swapped bounds" [ [ "3" ] ]
    (rows s "SELECT COUNT(*) FROM items WHERE id BETWEEN SYMMETRIC 3 AND 1")

let test_corresponding () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE l (a INTEGER, b INTEGER)");
  ignore (run s "CREATE TABLE r (b INTEGER, c INTEGER)");
  ignore (run s "INSERT INTO l (a, b) VALUES (1, 10), (2, 20)");
  ignore (run s "INSERT INTO r (b, c) VALUES (20, 7), (30, 8)");
  check_rows "union corresponding on the shared column"
    [ [ "10" ]; [ "20" ]; [ "30" ] ]
    (rows s "SELECT a, b FROM l UNION CORRESPONDING SELECT b, c FROM r ORDER BY b ASC");
  check_rows "intersect corresponding"
    [ [ "20" ] ]
    (rows s "SELECT a, b FROM l INTERSECT CORRESPONDING SELECT b, c FROM r");
  check_bool "no common columns is an error" true
    (Astring_contains.contains
       (run_err s "SELECT a FROM l UNION CORRESPONDING SELECT c FROM r")
       "common")

let test_dynamic_parameters () =
  let s = fresh_session () in
  setup_items s;
  let run_p sql values =
    match Core.run_prepared s sql values with
    | Ok (Executor.Rows rs) -> rs.Executor.rows
    | Ok _ -> Alcotest.fail "rows expected"
    | Error e -> Alcotest.failf "run_prepared: %a" Core.pp_error e
  in
  check_rows "one parameter"
    [ [ "bolt" ] ]
    (run_p "SELECT name FROM items WHERE id = ?" [ Value.Int 1 ]);
  check_rows "two parameters in order"
    [ [ "nut" ]; [ "gear" ] ]
    (run_p "SELECT name FROM items WHERE id > ? AND id <= ?"
       [ Value.Int 1; Value.Int 3 ]);
  (match Core.run_prepared s "SELECT name FROM items WHERE id = ?" [] with
   | Error e ->
     check_bool "missing binding reported" true
       (Astring_contains.contains (Fmt.str "%a" Core.pp_error e) "parameter ?1")
   | Ok _ -> Alcotest.fail "missing binding must fail");
  (* Unbound execution through plain run also fails cleanly. *)
  check_bool "unbound parameter at evaluation" true
    (Astring_contains.contains
       (run_err s "SELECT name FROM items WHERE id = ?")
       "unbound dynamic parameter")

let test_explain () =
  let s = fresh_session () in
  setup_items s;
  let plan sql =
    match run s sql with
    | Executor.Rows rs ->
      String.concat "\n"
        (List.map (fun row -> String.concat "" (List.map Value.to_string row)) rs.Executor.rows)
    | _ -> Alcotest.fail "rows expected"
  in
  let p =
    plan
      "EXPLAIN SELECT name, COUNT(*) FROM items WHERE price < 1 GROUP BY name ORDER BY name ASC"
  in
  List.iter
    (fun needle -> check_bool (needle ^ " in plan") true (Astring_contains.contains p needle))
    [ "scan items (4 rows)"; "filter:"; "group by 1 key(s)"; "project 2 item(s)"; "sort by 1 key(s)" ];
  let p2 = plan "EXPLAIN SELECT i.name FROM items AS i INNER JOIN items AS j ON i.id = j.id" in
  check_bool "join in plan" true (Astring_contains.contains p2 "nested-loop inner join")

let test_quoted_identifiers_end_to_end () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE \"Weird Table\" (\"A Col\" INTEGER)");
  check_int "insert through quoted names" 1
    (affected s "INSERT INTO \"Weird Table\" (\"A Col\") VALUES (7)");
  check_rows "select through quoted names" [ [ "7" ] ]
    (rows s "SELECT \"A Col\" FROM \"Weird Table\"")

let test_view_over_join () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE t (k INTEGER, v VARCHAR(5))");
  ignore (run s "CREATE TABLE u (k INTEGER, w VARCHAR(5))");
  ignore (run s "INSERT INTO t (k, v) VALUES (1, 'a'), (2, 'b')");
  ignore (run s "INSERT INTO u (k, w) VALUES (2, 'x')");
  ignore
    (run s
       "CREATE VIEW joined (v, w) AS SELECT t.v, u.w FROM t INNER JOIN u ON t.k = u.k");
  check_rows "view over a join" [ [ "b"; "x" ] ] (rows s "SELECT v, w FROM joined");
  check_rows "view composes with further filtering" [ [ "x" ] ]
    (rows s "SELECT w FROM joined WHERE v = 'b'")

let test_nested_ctes () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE base (n INTEGER)");
  ignore (run s "INSERT INTO base (n) VALUES (1), (2), (3)");
  (* b = {2,3,4}; the n > 1 filter keeps all three; their sum is 9. *)
  check_rows "CTE over CTE over CTE"
    [ [ "9" ] ]
    (rows s
       "WITH a (n) AS (SELECT n FROM base), b (n) AS (SELECT n + 1 FROM a), \
        c (total) AS (SELECT SUM(n) FROM b WHERE n > 1) SELECT total FROM c \
        WHERE total > 0")

let test_insert_coercion () =
  let s = fresh_session () in
  ignore (run s "CREATE TABLE typed (i INTEGER, d DECIMAL(6, 2), c CHAR(3), b BOOLEAN)");
  ignore (run s "INSERT INTO typed (i, d, c, b) VALUES ('42', 7, 'abcdef', 1)");
  check_rows "values coerced to column types"
    [ [ "42"; "7.0"; "abc"; "TRUE" ] ]
    (rows s "SELECT i, d, c, b FROM typed");
  check_bool "uncoercible value rejected" true
    (Astring_contains.contains
       (run_err s "INSERT INTO typed (i) VALUES ('xyz')")
       "cannot cast")

let suite =
  [
    Alcotest.test_case "projection and where" `Quick test_projection_and_where;
    Alcotest.test_case "star and aliases" `Quick test_star_and_aliases;
    Alcotest.test_case "arithmetic and nulls" `Quick test_arithmetic_and_nulls;
    Alcotest.test_case "order by and fetch" `Quick test_order_by_and_limit;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "group by / having" `Quick test_group_by_having;
    Alcotest.test_case "aggregate over empty" `Quick test_aggregate_without_group;
    Alcotest.test_case "joins" `Quick test_joins;
    Alcotest.test_case "subqueries" `Quick test_subqueries;
    Alcotest.test_case "derived tables and views" `Quick test_derived_tables_and_views;
    Alcotest.test_case "set operations" `Quick test_set_operations;
    Alcotest.test_case "string functions and case" `Quick test_string_functions;
    Alcotest.test_case "insert constraints" `Quick test_insert_constraints;
    Alcotest.test_case "check and fk constraints" `Quick test_check_and_fk_constraints;
    Alcotest.test_case "update/delete" `Quick test_update_delete;
    Alcotest.test_case "insert from query" `Quick test_insert_from_query;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "alter table" `Quick test_alter_table;
    Alcotest.test_case "transactions" `Quick test_transactions;
    Alcotest.test_case "savepoints" `Quick test_savepoints;
    Alcotest.test_case "grants recorded" `Quick test_grants_recorded;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "deterministic functions" `Quick test_deterministic_functions;
    Alcotest.test_case "with clause (CTEs)" `Quick test_with_clause;
    Alcotest.test_case "with recursive" `Quick test_with_recursive;
    Alcotest.test_case "sequences" `Quick test_sequences;
    Alcotest.test_case "sequences roll back" `Quick test_sequences_transactional;
    Alcotest.test_case "overlay/octet_length" `Quick test_overlay_and_octet_length;
    Alcotest.test_case "interval values" `Quick test_interval_values;
    Alcotest.test_case "privilege enforcement" `Quick test_privilege_enforcement;
    Alcotest.test_case "session authorization" `Quick test_session_authorization;
    Alcotest.test_case "between symmetric" `Quick test_between_symmetric;
    Alcotest.test_case "corresponding set ops" `Quick test_corresponding;
    Alcotest.test_case "dynamic parameters" `Quick test_dynamic_parameters;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "quoted identifiers end-to-end" `Quick
      test_quoted_identifiers_end_to_end;
    Alcotest.test_case "view over join" `Quick test_view_over_join;
    Alcotest.test_case "nested CTEs" `Quick test_nested_ctes;
    Alcotest.test_case "insert coercion" `Quick test_insert_coercion;
  ]
