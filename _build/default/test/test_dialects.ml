(* Experiments E4/E6: the §3.2 worked example and the prototype dialect
   parsers. Each dialect accepts exactly its corpus: its own accept set, and
   none of its reject set; the full dialect accepts every dialect corpus. *)

let check_bool = Alcotest.(check bool)

let generated =
  lazy
    (List.map
       (fun (d : Dialects.Dialect.t) ->
         match Core.generate_dialect d with
         | Ok g -> (d.Dialects.Dialect.name, g)
         | Error e -> Alcotest.failf "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
       Dialects.Dialect.all)

let parser_of name = List.assoc name (Lazy.force generated)

let check_matrix name ~accept ~reject () =
  let g = parser_of name in
  List.iter
    (fun sql ->
      check_bool (Printf.sprintf "%s accepts: %s" name sql) true (Core.accepts g sql))
    accept;
  List.iter
    (fun sql ->
      check_bool (Printf.sprintf "%s rejects: %s" name sql) false (Core.accepts g sql))
    reject

let test_minimal =
  check_matrix "minimal" ~accept:Corpus.minimal_accept ~reject:Corpus.minimal_reject

let test_scql = check_matrix "scql" ~accept:Corpus.scql_accept ~reject:Corpus.scql_reject

let test_tinysql =
  check_matrix "tinysql" ~accept:Corpus.tinysql_accept ~reject:Corpus.tinysql_reject

let test_embedded =
  check_matrix "embedded" ~accept:Corpus.embedded_accept ~reject:Corpus.embedded_reject

let test_analytics =
  check_matrix "analytics" ~accept:Corpus.analytics_accept ~reject:Corpus.analytics_reject

let test_full_accepts_everything () =
  let g = parser_of "full" in
  List.iter
    (fun sql ->
      check_bool (Printf.sprintf "full accepts: %s" sql) true (Core.accepts g sql))
    Corpus.full_accept

let test_nothing_accepts_garbage () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun sql ->
          check_bool (Printf.sprintf "%s rejects garbage: %s" name sql) false
            (Core.accepts g sql))
        Corpus.always_reject)
    (Lazy.force generated)

let test_dialect_sizes_monotone () =
  (* Tailoring effect (E7's invariant): every restricted dialect's grammar
     and token set is strictly smaller than the full dialect's. *)
  let full = parser_of "full" in
  let full_rules = Grammar.Cfg.rule_count full.Core.grammar in
  let full_tokens = List.length full.Core.tokens in
  List.iter
    (fun (name, g) ->
      if name <> "full" then begin
        check_bool (name ^ " fewer rules") true
          (Grammar.Cfg.rule_count g.Core.grammar < full_rules);
        check_bool (name ^ " fewer tokens") true
          (List.length g.Core.tokens < full_tokens)
      end)
    (Lazy.force generated)

let test_keywords_shrink_with_features () =
  (* In the minimal dialect ORDER is not reserved, so it can be a table
     name; the full dialect reserves it. *)
  let minimal = parser_of "minimal" in
  let full = parser_of "full" in
  let sql = "SELECT a FROM order" in
  check_bool "minimal treats 'order' as identifier" true (Core.accepts minimal sql);
  check_bool "full reserves ORDER" false (Core.accepts full sql)

let test_find_and_all () =
  check_bool "find tinysql" true (Dialects.Dialect.find "tinysql" <> None);
  check_bool "find nonsense" true (Dialects.Dialect.find "nosql" = None);
  Alcotest.(check int) "six dialects" 6 (List.length Dialects.Dialect.all)

let test_all_dialect_configs_valid () =
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      Alcotest.(check (list string))
        (d.Dialects.Dialect.name ^ " valid")
        []
        (List.map
           (Fmt.str "%a" Feature.Config.pp_violation)
           (Sql.Model.validate d.Dialects.Dialect.config)))
    Dialects.Dialect.all

let test_composition_sequence_exposed () =
  let g = parser_of "minimal" in
  check_bool "sequence starts at the concept" true
    (match g.Core.sequence with "SQL:2003" :: _ -> true | _ -> false);
  check_bool "sequence covers the config" true
    (List.length g.Core.sequence = Feature.Config.cardinal g.Core.config)

let test_split_statements () =
  Alcotest.(check (list string)) "splits on top-level semicolons"
    [ "SELECT a FROM t"; " SELECT 'x;y' FROM u" ]
    (Core.split_statements "SELECT a FROM t; SELECT 'x;y' FROM u;");
  Alcotest.(check (list string)) "drops blanks" []
    (Core.split_statements " ;;  ; ")

let suite =
  [
    Alcotest.test_case "E4: minimal accept/reject" `Quick test_minimal;
    Alcotest.test_case "E6: scql accept/reject" `Quick test_scql;
    Alcotest.test_case "E6: tinysql accept/reject" `Quick test_tinysql;
    Alcotest.test_case "E6: embedded accept/reject" `Quick test_embedded;
    Alcotest.test_case "E6: analytics accept/reject" `Quick test_analytics;
    Alcotest.test_case "full accepts all corpora" `Quick test_full_accepts_everything;
    Alcotest.test_case "garbage rejected everywhere" `Quick test_nothing_accepts_garbage;
    Alcotest.test_case "tailored grammars smaller" `Quick test_dialect_sizes_monotone;
    Alcotest.test_case "keywords are features" `Quick test_keywords_shrink_with_features;
    Alcotest.test_case "dialect registry" `Quick test_find_and_all;
    Alcotest.test_case "all configs valid" `Quick test_all_dialect_configs_valid;
    Alcotest.test_case "composition sequence exposed" `Quick
      test_composition_sequence_exposed;
    Alcotest.test_case "script splitting" `Quick test_split_statements;
  ]
