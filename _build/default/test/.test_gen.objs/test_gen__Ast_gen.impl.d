test/ast_gen.ml: Array Ast List Option QCheck Sql_ast String
