(* Direct unit tests of the SQL printer (corner cases beyond what the
   round-trip property exercises). *)

open Sql_ast

let check = Alcotest.(check string)

let col n = Ast.Column (None, n)

let test_literals () =
  check "negative integer is parenthesized" "(- 5)"
    (Sql_printer.literal (Ast.L_integer (-5)));
  check "string escaping" "'it''s'" (Sql_printer.literal (Ast.L_string "it's"));
  check "decimal padding" "2.500000" (Sql_printer.literal (Ast.L_decimal 2.5));
  check "interval" "INTERVAL '5' DAY TO HOUR"
    (Sql_printer.literal
       (Ast.L_interval ("5", { Ast.from_field = "DAY"; to_field = Some "HOUR" })))

let test_types () =
  check "decimal with scale" "DECIMAL(8, 2)"
    (Sql_printer.data_type (Ast.T_decimal (Some (8, Some 2))));
  check "double" "DOUBLE PRECISION" (Sql_printer.data_type Ast.T_double);
  check "interval type" "INTERVAL YEAR"
    (Sql_printer.data_type (Ast.T_interval { Ast.from_field = "YEAR"; to_field = None }))

let test_expr_parenthesization () =
  check "compound operands wrapped" "(a + b) * c"
    (Sql_printer.expr
       (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, col "a", col "b"), col "c")));
  check "atoms unwrapped" "a + b"
    (Sql_printer.expr (Ast.Binop (Ast.Add, col "a", col "b")));
  check "unary wraps compounds" "- (a + b)"
    (Sql_printer.expr (Ast.Unary (Ast.S_minus, Ast.Binop (Ast.Add, col "a", col "b"))))

let test_niladic_and_calls () =
  check "niladic bare" "CURRENT_DATE" (Sql_printer.expr (Ast.Call ("CURRENT_DATE", [])));
  check "call with args" "f(a, b)"
    (Sql_printer.expr (Ast.Call ("f", [ col "a"; col "b" ])));
  check "next value" "NEXT VALUE FOR ids" (Sql_printer.expr (Ast.Next_value "ids"))

let test_trim_variants () =
  check "plain trim" "TRIM(a)"
    (Sql_printer.expr (Ast.Trim { side = None; removed = None; arg = col "a" }));
  check "side only" "TRIM(LEADING FROM a)"
    (Sql_printer.expr
       (Ast.Trim { side = Some Ast.Trim_leading; removed = None; arg = col "a" }));
  check "removed only" "TRIM(x FROM a)"
    (Sql_printer.expr (Ast.Trim { side = None; removed = Some (col "x"); arg = col "a" }))

let test_window_call () =
  check "both clauses" "RANK() OVER (PARTITION BY a ORDER BY b)"
    (Sql_printer.expr
       (Ast.Window_call
          { wfunc = "RANK"; partition_by = [ col "a" ]; win_order_by = [ col "b" ] }));
  check "empty spec" "ROW_NUMBER() OVER ()"
    (Sql_printer.expr
       (Ast.Window_call { wfunc = "ROW_NUMBER"; partition_by = []; win_order_by = [] }))

let test_cond_nesting () =
  let cmp a b = Ast.Comparison (Ast.Eq, col a, col b) in
  check "and/or parenthesized" "(a = b) AND (c = d)"
    (Sql_printer.cond (Ast.And (cmp "a" "b", cmp "c" "d")));
  check "not" "NOT (a = b)" (Sql_printer.cond (Ast.Not (cmp "a" "b")))

let test_query_clause_order () =
  let q =
    {
      Ast.with_ = None;
      body =
        Ast.Select
          {
            Ast.select_quantifier = None;
            projection = [ Ast.Expr_item (col "a", None) ];
            from = [ Ast.Table (Ast.simple_name "t", None) ];
            where = None;
            group_by = [];
            having = None;
          };
      order_by = [ { Ast.sort_expr = col "a"; descending = true; nulls_last = Some true } ];
      fetch = Some (Ast.Fetch_first 3);
      epoch = Some { Ast.duration = Some 1024; sample_period = Some 8 };
      updatability = Some Ast.For_read_only;
    }
  in
  check "clauses in grammar order"
    "SELECT a FROM t ORDER BY a DESC NULLS LAST FETCH FIRST 3 ROWS ONLY FOR \
     READ ONLY EPOCH DURATION 1024 SAMPLE PERIOD 8"
    (Sql_printer.query q)

let test_with_clause_printing () =
  let inner =
    Ast.query_of_body
      (Ast.Select
         {
           Ast.select_quantifier = None;
           projection = [ Ast.Expr_item (col "x", None) ];
           from = [ Ast.Table (Ast.simple_name "t", None) ];
           where = None;
           group_by = [];
           having = None;
         })
  in
  let q =
    {
      inner with
      Ast.with_ =
        Some
          {
            Ast.recursive = true;
            ctes = [ { Ast.cte_name = "c"; cte_columns = [ "x" ]; cte_query = inner } ];
          };
    }
  in
  check "with recursive prefix" "WITH RECURSIVE c (x) AS (SELECT x FROM t) SELECT x FROM t"
    (Sql_printer.query q)

let test_statements () =
  check "sequence options"
    "CREATE SEQUENCE ids START WITH 10 INCREMENT BY 2"
    (Sql_printer.statement
       (Ast.Sequence_stmt
          (Ast.Create_sequence
             { seq_name = "ids"; seq_start = Some 10; seq_increment = Some 2 })));
  check "grant all" "GRANT ALL PRIVILEGES ON TABLE t TO PUBLIC"
    (Sql_printer.statement
       (Ast.Grant_stmt
          {
            Ast.privileges = [ Ast.P_all ];
            grant_on = Ast.simple_name "t";
            grantees = [ Ast.Public ];
            with_grant_option = false;
          }));
  check "qualified drop" "DROP TABLE s.t CASCADE"
    (Sql_printer.statement
       (Ast.Drop_stmt
          {
            Ast.drop_kind = Ast.Drop_table;
            drop_name = { Ast.qualifier = Some "s"; name = "t" };
            behavior = Some Ast.Cascade;
          }))

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "types" `Quick test_types;
    Alcotest.test_case "expression parens" `Quick test_expr_parenthesization;
    Alcotest.test_case "calls and niladics" `Quick test_niladic_and_calls;
    Alcotest.test_case "trim variants" `Quick test_trim_variants;
    Alcotest.test_case "window calls" `Quick test_window_call;
    Alcotest.test_case "condition nesting" `Quick test_cond_nesting;
    Alcotest.test_case "query clause order" `Quick test_query_clause_order;
    Alcotest.test_case "with clause" `Quick test_with_clause_printing;
    Alcotest.test_case "statements" `Quick test_statements;
  ]
