(* Tests for the composition calculus — experiment E5: the paper's §3.2
   composition rules, verbatim, plus the anchored-merge and token rules. *)

open Grammar.Builder
module Rules = Compose.Rules
module P = Grammar.Production

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let alt_testable =
  Alcotest.testable (fun ppf a -> P.pp_alt ppf a) P.alt_equal

let alts_of (p : P.t) = p.P.alts

let compose_two a b = Rules.compose_production a b

(* Paper case 1: "in composing A: BC with A: B, the production B is replaced
   with BC" — i.e. the accumulated rule A: B composed with the fragment rule
   A: BC yields A: BC. *)
let test_paper_replace () =
  let old_rule = r1 "A" [ nt "B" ] in
  let new_rule = r1 "A" [ nt "B"; nt "C" ] in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "replaced" [ [ nt "B"; nt "C" ] ]
    (alts_of composed)

(* Paper case 2: "in composing A: B with A: BC, the production BC is
   retained". *)
let test_paper_keep () =
  let old_rule = r1 "A" [ nt "B"; nt "C" ] in
  let new_rule = r1 "A" [ nt "B" ] in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "kept" [ [ nt "B"; nt "C" ] ]
    (alts_of composed)

(* Paper case 3: "in composing A: B with A: C, productions B and C are
   appended to obtain A : B | C". *)
let test_paper_append () =
  let old_rule = r1 "A" [ nt "B" ] in
  let new_rule = r1 "A" [ nt "C" ] in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "appended" [ [ nt "B" ]; [ nt "C" ] ]
    (alts_of composed)

(* Paper: "A: B and A : B[C] ... can be composed in that order only" — the
   optional specification lands after its non-optional anchor. *)
let test_paper_optional_after_base () =
  let old_rule = r1 "A" [ nt "B" ] in
  let new_rule = r1 "A" [ nt "B"; opt [ nt "C" ] ] in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "merged" [ [ nt "B"; opt [ nt "C" ] ] ]
    (alts_of composed)

let test_paper_optional_before_base () =
  let old_rule = r1 "A" [ nt "B" ] in
  let new_rule = r1 "A" [ opt [ nt "C" ]; nt "B" ] in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "leading optional" [ [ opt [ nt "C" ]; nt "B" ] ]
    (alts_of composed)

(* Paper: "if features to be composed contain a sublist and a complex list,
   e.g., A: B and A: B [, B] respectively, then these are composed
   sequentially with the sublist being composed ahead of the complex list." *)
let test_paper_sublist_then_complex_list () =
  let old_rule = r1 "A" [ nt "B" ] in
  let new_rule = r1 "A" (comma_list (nt "B")) in
  let composed = compose_two old_rule new_rule in
  Alcotest.(check (list alt_testable)) "complex list wins"
    [ comma_list (nt "B") ]
    (alts_of composed)

(* Two independent optional extensions of the same base merge instead of
   splitting into incompatible alternatives. *)
let test_independent_optionals_merge () =
  let base = r1 "q" [ nt "body" ] in
  let with_order = r1 "q" [ nt "body"; opt [ nt "order_by" ] ] in
  let with_fetch = r1 "q" [ nt "body"; opt [ nt "fetch" ] ] in
  let composed = compose_two (compose_two base with_order) with_fetch in
  Alcotest.(check (list alt_testable)) "both clauses"
    [ [ nt "body"; opt [ nt "order_by" ]; opt [ nt "fetch" ] ] ]
    (alts_of composed)

let test_merge_dedupes () =
  let a = [ nt "B"; opt [ nt "C" ] ] in
  let b = [ nt "B"; opt [ nt "C" ]; opt [ nt "D" ] ] in
  Alcotest.check alt_testable "no duplicated optional"
    [ nt "B"; opt [ nt "C" ]; opt [ nt "D" ] ]
    (Rules.merge a b)

let test_mergeable_requires_same_skeleton () =
  check_bool "same skeleton" true
    (Rules.mergeable [ nt "B"; opt [ nt "C" ] ] [ nt "B"; opt [ nt "D" ] ]);
  check_bool "different skeleton" false
    (Rules.mergeable [ nt "B" ] [ nt "B"; nt "C" ])

(* Containment is anchored at the head symbol: suffix-sharing alternatives
   must not capture each other. *)
let test_containment_requires_same_head () =
  let savepoint = [ t "SAVEPOINT"; nt "id" ] in
  let rollback = [ t "ROLLBACK"; opt [ t "TO"; t "SAVEPOINT"; nt "id" ] ] in
  check_bool "no capture" false (Rules.contains rollback savepoint);
  let composed = compose_two (r1 "txn" rollback) (r1 "txn" savepoint) in
  check_int "both alternatives survive" 2 (List.length (alts_of composed))

let test_contains_positive () =
  check_bool "plain containment" true
    (Rules.contains [ nt "B"; nt "C" ] [ nt "B" ]);
  check_bool "containment through optional" true
    (Rules.contains [ nt "B"; opt [ nt "C" ] ] [ nt "B" ])

let test_equal_alternative_is_noop () =
  let rule_a = r1 "A" [ nt "B"; nt "C" ] in
  let composed = compose_two rule_a rule_a in
  check_int "single alternative" 1 (List.length (alts_of composed))

let test_compose_rules_appends_fresh () =
  let acc = [ r1 "a" [ t "X" ] ] in
  let fragment = [ r1 "a" [ t "X"; t "Y" ]; r1 "b" [ t "Z" ] ] in
  let out = Rules.compose_rules acc fragment in
  check_int "two rules" 2 (List.length out);
  Alcotest.(check string) "order preserved" "a" (List.hd out).P.lhs

let test_compose_production_lhs_mismatch () =
  Alcotest.check_raises "invalid arg"
    (Invalid_argument "Rules.compose_production: differing left-hand sides")
    (fun () -> ignore (compose_two (r1 "a" [ t "X" ]) (r1 "b" [ t "X" ])))

let test_outcomes () =
  let outcome old_alts new_alt = snd (Rules.compose_alt old_alts new_alt) in
  check_bool "kept" true (outcome [ [ nt "B" ] ] [ nt "B" ] = Rules.Kept_old);
  check_bool "merged" true
    (outcome [ [ nt "B" ] ] [ nt "B"; opt [ nt "C" ] ] = Rules.Merged);
  check_bool "replaced" true
    (outcome [ [ nt "B" ] ] [ nt "B"; nt "C" ] = Rules.Replaced);
  check_bool "appended" true (outcome [ [ nt "B" ] ] [ nt "C" ] = Rules.Appended)

(* --- Token composition --------------------------------------------------------- *)

let test_token_merge_union () =
  let a = [ ("SELECT", Lexing_gen.Spec.Keyword "SELECT") ] in
  let b = [ ("FROM", Lexing_gen.Spec.Keyword "FROM") ] in
  match Lexing_gen.Spec.merge a b with
  | Ok merged -> check_int "two tokens" 2 (List.length merged)
  | Error _ -> Alcotest.fail "merge must succeed"

let test_token_merge_idempotent () =
  let a = [ ("SELECT", Lexing_gen.Spec.Keyword "SELECT") ] in
  match Lexing_gen.Spec.merge a a with
  | Ok merged -> check_int "one token" 1 (List.length merged)
  | Error _ -> Alcotest.fail "identical redefinition is fine"

let test_token_merge_conflict () =
  let a = [ ("PERIOD", Lexing_gen.Spec.Punct ".") ] in
  let b = [ ("PERIOD", Lexing_gen.Spec.Keyword "PERIOD") ] in
  match Lexing_gen.Spec.merge a b with
  | Ok _ -> Alcotest.fail "conflict expected"
  | Error c -> Alcotest.(check string) "conflicting name" "PERIOD" c.Lexing_gen.Spec.name

(* --- Composer: sequencing and whole-model composition ------------------------------- *)

let test_sequence_is_preorder () =
  (* The composition sequence is the diagram pre-order restricted to the
     selection: bases before extensions, siblings in clause order — this is
     what anchors WHERE before GROUP BY in the merged table expression. *)
  let config =
    Sql.Model.close
      (Feature.Config.of_names
         [ "Where"; "Group By"; "Having"; "Comparison Predicate"; "Equals" ])
  in
  let seq = Compose.Composer.sequence Sql.Model.model config in
  let index name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not in sequence" name
      | x :: rest -> if String.equal x name then i else go (i + 1) rest
    in
    go 0 seq
  in
  check_bool "base before extension" true
    (index "Table Expression" < index "Where");
  check_bool "where before group by" true (index "Where" < index "Group By");
  check_bool "group by before having" true (index "Group By" < index "Having");
  check_int "sequence covers selection" (Feature.Config.cardinal config)
    (List.length seq)

let test_compose_invalid_config_rejected () =
  let config = Feature.Config.of_names [ "Where" ] in
  match Sql.Model.compose config with
  | Error (Compose.Composer.Invalid_configuration _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Compose.Composer.pp_error e
  | Ok _ -> Alcotest.fail "invalid config must be rejected"

let test_compose_minimal_grammar_exact () =
  (* The §3.2 example composes to a grammar that contains precisely the
     selected syntax: SELECT with optional quantifier, one column, one table,
     optional equality WHERE. *)
  let out =
    match Sql.Model.compose Dialects.Dialect.minimal_select.Dialects.Dialect.config with
    | Ok out -> out
    | Error e -> Alcotest.failf "compose: %a" Compose.Composer.pp_error e
  in
  let g = out.Compose.Composer.grammar in
  let rule_alts name =
    match Grammar.Cfg.find g name with
    | Some r -> r.P.alts
    | None -> Alcotest.failf "rule %s missing" name
  in
  Alcotest.(check (list alt_testable)) "query_specification"
    [
      [
        t "SELECT"; opt [ nt "set_quantifier" ]; nt "select_list";
        nt "table_expression";
      ];
    ]
    (rule_alts "query_specification");
  Alcotest.(check (list alt_testable)) "set_quantifier has both keywords"
    [ [ t "ALL" ]; [ t "DISTINCT" ] ]
    (rule_alts "set_quantifier");
  Alcotest.(check (list alt_testable)) "single comparison operator"
    [ [ t "EQUALS" ] ]
    (rule_alts "comp_op");
  check_bool "no ORDER BY rule" true (Grammar.Cfg.find g "order_by_clause" = None);
  check_bool "no join rule" true (Grammar.Cfg.find g "join_tail" = None)

let test_compose_monotone_tokens () =
  (* Selecting more features never removes tokens. *)
  let tokens_of d =
    match Sql.Model.compose d.Dialects.Dialect.config with
    | Ok out -> List.map fst out.Compose.Composer.tokens
    | Error e -> Alcotest.failf "compose: %a" Compose.Composer.pp_error e
  in
  let minimal = tokens_of Dialects.Dialect.minimal_select in
  let full = tokens_of Dialects.Dialect.full in
  List.iter
    (fun tok -> check_bool (tok ^ " still present in full") true (List.mem tok full))
    minimal

let test_composed_grammar_well_formed_for_samples () =
  (* Random valid configurations compose into well-formed grammars. *)
  for seed = 1 to 25 do
    let config = Feature.Config.sample Sql.Model.model ~seed in
    match Feature.Config.validate Sql.Model.model config with
    | _ :: _ -> () (* sampling can trip an excludes-free model only; skip *)
    | [] -> (
      match Sql.Model.compose config with
      | Error e ->
        Alcotest.failf "seed %d: %a" seed Compose.Composer.pp_error e
      | Ok out -> (
        match Parser_gen.Engine.generate out.Compose.Composer.grammar with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "seed %d: %a" seed Parser_gen.Engine.pp_gen_error e))
  done

let test_trace () =
  let config = Dialects.Dialect.minimal_select.Dialects.Dialect.config in
  let events = Compose.Composer.trace Sql.Model.model Sql.Model.registry config in
  let find_event feature lhs =
    List.find_opt
      (fun (e : Compose.Composer.trace_event) ->
        e.feature = feature && e.lhs = lhs)
      events
  in
  (* The §3.2 narrative: Set Quantifier merges into the query specification
     introduced by Query Specification; ALL introduces set_quantifier and
     DISTINCT appends to it. *)
  (match find_event "Query Specification" "query_specification" with
   | Some { outcome = None; _ } -> ()
   | _ -> Alcotest.fail "Query Specification should introduce its rule");
  (match find_event "Set Quantifier" "query_specification" with
   | Some { outcome = Some Rules.Merged; _ } -> ()
   | _ -> Alcotest.fail "Set Quantifier should merge");
  (match find_event "All" "set_quantifier" with
   | Some { outcome = None; _ } -> ()
   | _ -> Alcotest.fail "All should introduce set_quantifier");
  match find_event "Distinct" "set_quantifier" with
  | Some { outcome = Some Rules.Appended; _ } -> ()
  | _ -> Alcotest.fail "Distinct should append"

let suite =
  [
    Alcotest.test_case "paper rule: replace" `Quick test_paper_replace;
    Alcotest.test_case "paper rule: keep" `Quick test_paper_keep;
    Alcotest.test_case "paper rule: append" `Quick test_paper_append;
    Alcotest.test_case "paper rule: optional after base" `Quick
      test_paper_optional_after_base;
    Alcotest.test_case "paper rule: optional before base" `Quick
      test_paper_optional_before_base;
    Alcotest.test_case "paper rule: sublist then complex list" `Quick
      test_paper_sublist_then_complex_list;
    Alcotest.test_case "independent optionals merge" `Quick
      test_independent_optionals_merge;
    Alcotest.test_case "merge dedupes" `Quick test_merge_dedupes;
    Alcotest.test_case "mergeable skeleton" `Quick test_mergeable_requires_same_skeleton;
    Alcotest.test_case "containment anchored at head" `Quick
      test_containment_requires_same_head;
    Alcotest.test_case "containment positive" `Quick test_contains_positive;
    Alcotest.test_case "equal alternative no-op" `Quick test_equal_alternative_is_noop;
    Alcotest.test_case "compose_rules appends fresh" `Quick
      test_compose_rules_appends_fresh;
    Alcotest.test_case "lhs mismatch rejected" `Quick
      test_compose_production_lhs_mismatch;
    Alcotest.test_case "outcomes" `Quick test_outcomes;
    Alcotest.test_case "token merge union" `Quick test_token_merge_union;
    Alcotest.test_case "token merge idempotent" `Quick test_token_merge_idempotent;
    Alcotest.test_case "token merge conflict" `Quick test_token_merge_conflict;
    Alcotest.test_case "sequence is diagram pre-order" `Quick
      test_sequence_is_preorder;
    Alcotest.test_case "invalid config rejected" `Quick
      test_compose_invalid_config_rejected;
    Alcotest.test_case "minimal grammar exact (E4)" `Quick
      test_compose_minimal_grammar_exact;
    Alcotest.test_case "token monotonicity" `Quick test_compose_monotone_tokens;
    Alcotest.test_case "sampled configs compose" `Quick
      test_composed_grammar_well_formed_for_samples;
    Alcotest.test_case "composition trace (§3.2 narrative)" `Quick test_trace;
  ]
