(* Tests for the grammar report. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let report_of name =
  match Dialects.Dialect.find name with
  | None -> Alcotest.failf "no dialect %s" name
  | Some d -> (
    match Core.generate_dialect d with
    | Ok g -> Report.build g
    | Error e -> Alcotest.failf "generate: %a" Core.pp_error e)

let test_minimal_report () =
  let r = report_of "minimal" in
  check_int "features" 24 r.Report.feature_count;
  Alcotest.(check (list string)) "one statement class" [ "query_statement" ]
    r.Report.statement_classes;
  check_int "no LL(1) conflicts in the minimal grammar" 0
    (List.length r.Report.ll1_conflicts);
  check_bool "contributions non-empty" true (r.Report.contributions <> []);
  check_bool "every contribution is a selected feature" true
    (List.for_all
       (fun (f, _, _) -> Feature.Config.mem f (Dialects.Dialect.minimal_select).Dialects.Dialect.config)
       r.Report.contributions)

let test_full_report () =
  let r = report_of "full" in
  check_bool "many statement classes" true
    (List.length r.Report.statement_classes >= 10);
  check_bool "full grammar needs backtracking somewhere" true
    (r.Report.ll1_conflicts <> []);
  check_bool "statement classes include DML and DDL" true
    (List.mem "insert_statement" r.Report.statement_classes
     && List.mem "create_table_statement" r.Report.statement_classes)

let test_rendering () =
  match Dialects.Dialect.find "tinysql" with
  | None -> Alcotest.fail "tinysql"
  | Some d -> (
    match Core.generate_dialect d with
    | Error e -> Alcotest.failf "generate: %a" Core.pp_error e
    | Ok g ->
      let text = Report.to_string g in
      List.iter
        (fun needle ->
          check_bool (needle ^ " present") true (Astring_contains.contains text needle))
        [
          "grammar report: tinysql"; "-- size --"; "-- statement classes --";
          "-- determinism --"; "-- feature contributions"; "Epoch Duration";
        ])

let suite =
  [
    Alcotest.test_case "minimal report" `Quick test_minimal_report;
    Alcotest.test_case "full report" `Quick test_full_report;
    Alcotest.test_case "rendering" `Quick test_rendering;
  ]
