(* Workload generators for the benchmark harness.

   No published corpus accompanies the paper, so workloads are synthesized:
   per-dialect statement mixes sized so the relative measurements (tailored
   vs. full) are stable. Deterministic — no randomness. *)

let minimal_queries =
  [
    "SELECT a FROM t";
    "SELECT DISTINCT a FROM t";
    "SELECT ALL a FROM t WHERE a = b";
    "SELECT a FROM t WHERE x = y";
  ]

let tinysql_queries =
  [
    "SELECT nodeid, light FROM sensors";
    "SELECT nodeid, AVG(temp) FROM sensors WHERE light > 100 GROUP BY nodeid EPOCH DURATION 1024";
    "SELECT COUNT(*) FROM sensors WHERE temp > 25 SAMPLE PERIOD 2048";
    "SELECT nodeid FROM sensors GROUP BY nodeid HAVING AVG(temp) > 30";
  ]

let scql_statements =
  [
    "SELECT balance FROM purse WHERE id = 1";
    "UPDATE purse SET balance = 400 WHERE id = 1";
    "INSERT INTO purse (id, balance) VALUES (7, 100)";
    "DELETE FROM purse WHERE id = 7";
  ]

let embedded_statements =
  [
    "SELECT name, price FROM items WHERE stocked = TRUE ORDER BY price DESC LIMIT 10";
    "INSERT INTO items (id, name, price) VALUES (1, 'bolt', 0.25)";
    "UPDATE items SET price = price * 2 WHERE id = 1";
    "DELETE FROM items WHERE id = 1";
  ]

let analytics_queries =
  [
    "SELECT r.region, SUM(s.amount) AS total FROM sales AS s INNER JOIN regions AS r ON s.region_id = r.id WHERE s.yr = 2007 GROUP BY r.region HAVING SUM(s.amount) > 1000 ORDER BY total DESC FETCH FIRST 10 ROWS ONLY";
    "SELECT a FROM t WHERE a > ALL (SELECT b FROM u WHERE u.k = t.k)";
    "SELECT x FROM t UNION ALL SELECT y FROM u INTERSECT SELECT z FROM v";
    "SELECT CASE WHEN amount > 100 THEN 'big' ELSE 'small' END, CAST(amount AS INTEGER) FROM sales";
  ]

let queries_for dialect_name =
  match dialect_name with
  | "minimal" -> minimal_queries
  | "scql" -> scql_statements
  | "tinysql" -> tinysql_queries
  | "embedded" -> embedded_statements
  | "analytics" -> analytics_queries
  | _ ->
    minimal_queries @ tinysql_queries @ scql_statements @ embedded_statements
    @ analytics_queries

(* A long token stream for scanner throughput (E10). *)
let scanner_input =
  let clause i =
    Printf.sprintf
      "SELECT c%d, price * %d + 1 FROM items WHERE c%d = 'v%d' AND price <= %d.%02d"
      i i i i i (i mod 100)
  in
  String.concat "\n" (List.init 200 clause)

(* End-to-end engine workload (E11): schema + inserts + queries. *)
let engine_setup =
  [
    "CREATE TABLE readings (nodeid INTEGER, temp DECIMAL(6, 2), light INTEGER)";
  ]

let engine_inserts n =
  List.init n (fun i ->
      Printf.sprintf
        "INSERT INTO readings (nodeid, temp, light) VALUES (%d, %d.%02d, %d)"
        (i mod 16) (15 + (i mod 20)) (i mod 100) (i * 7 mod 1024))

let engine_queries =
  [
    "SELECT nodeid, AVG(temp), MAX(light) FROM readings WHERE light > 100 GROUP BY nodeid";
    "SELECT COUNT(*) FROM readings WHERE temp > 25";
    "SELECT nodeid FROM readings GROUP BY nodeid HAVING AVG(light) > 200";
  ]
