bench/workloads.ml: List Printf String
