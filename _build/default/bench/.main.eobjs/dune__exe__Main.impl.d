bench/main.ml: Analyze Bechamel Benchmark Compose Core Dialects Feature Fmt Grammar Instance Lexing_gen Lint List Measure Parser_gen Printf Sql Staged Sys Test Time Toolkit Workloads
