bench/main.mli:
