bin/sqlpl.ml: Arg Cmd Cmdliner Compose Config_file Configure Core Dialects Engine Feature Fmt Grammar In_channel Lexing_gen Lint List Parser_gen Printf Report Sql Sql_ast String Term
