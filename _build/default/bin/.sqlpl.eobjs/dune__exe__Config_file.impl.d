bin/config_file.ml: Feature In_channel List Out_channel Printf String
