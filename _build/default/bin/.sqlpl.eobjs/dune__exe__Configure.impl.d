bin/configure.ml: Compose Config_file Core Dialects Feature Fmt Grammar In_channel List Option Printf Report Sql Sql_ast String Sys
