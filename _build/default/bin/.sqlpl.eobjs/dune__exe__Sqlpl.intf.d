bin/sqlpl.mli:
