(* Interactive feature configurator — the user interface the paper names as
   work in progress in §5: "a user interface presenting various SQL
   statements and their features. When a user selects different features,
   the required parser is created by composing these features."

   A line-oriented REPL: toggle features, watch validation live, inspect the
   composed grammar, and try statements against the freshly generated
   parser. *)

let help_text =
  {|commands:
  add <feature>      select a feature (closes over parents/mandatory/requires)
  remove <feature>   deselect a feature (and everything that depends on it)
  show [<diagram>]   render a diagram with [x] checkboxes for the selection
  status             validate the current selection
  fix                suggest features that would repair violations
  report             grammar report for the current selection
  grammar            print the composed grammar
  try <sql>          generate a parser and parse one statement
  save <file>        write the selection to a file
  load <file>        replace the selection with one read from a file
  reset [<dialect>]  restart from scratch or from a built-in dialect
  list               list all feature names
  help               this text
  quit               leave the configurator|}

let suggestions config violations =
  List.filter_map
    (fun v ->
      match v with
      | Feature.Config.Or_group_violation { parent } ->
        Option.map
          (fun (p : Feature.Tree.t) ->
            let members =
              List.concat_map
                (fun g ->
                  match g with
                  | Feature.Tree.Or_group ms | Feature.Tree.Alt_group ms ->
                    List.map (fun (m : Feature.Tree.t) -> m.Feature.Tree.name) ms
                  | Feature.Tree.Child _ -> [])
                p.Feature.Tree.groups
            in
            Printf.sprintf "pick at least one of {%s} under %S"
              (String.concat ", " members) parent)
          (Feature.Tree.find Sql.Model.model.Feature.Model.concept parent)
      | Feature.Config.Alt_group_violation { parent; _ } ->
        Some (Printf.sprintf "pick exactly one alternative under %S" parent)
      | Feature.Config.Requires_violation { feature; missing } ->
        Some (Printf.sprintf "add %S (required by %S)" missing feature)
      | Feature.Config.Mandatory_child_missing { child; _ } ->
        Some (Printf.sprintf "add %S (mandatory)" child)
      | _ -> None)
    violations
  |> fun l ->
  ignore config;
  l

let print_status config =
  match Sql.Model.validate config with
  | [] ->
    Printf.printf "valid: %d features selected\n" (Feature.Config.cardinal config)
  | violations ->
    Printf.printf "%d violation(s):\n" (List.length violations);
    List.iter
      (fun v -> Printf.printf "  %s\n" (Fmt.str "%a" Feature.Config.pp_violation v))
      violations;
    List.iter (fun s -> Printf.printf "  hint: %s\n" s) (suggestions config violations)

(* Removing a feature also removes everything whose closure would bring it
   back: descendants and requires-dependents. *)
let remove_feature config name =
  let model = Sql.Model.model in
  let tree = model.Feature.Model.concept in
  let removed = ref [ name ] in
  let depends_on_removed candidate =
    (* ancestors-in-selection chain or requires chain touching a removed one *)
    let rec ancestor_chain (f : string) =
      match Feature.Tree.parent tree f with
      | Some p -> p.Feature.Tree.name :: ancestor_chain p.Feature.Tree.name
      | None -> []
    in
    List.exists (fun r -> List.mem r !removed) (ancestor_chain candidate)
    || List.exists (fun r -> List.mem r !removed) (Feature.Model.requires_of model candidate)
  in
  let rec fix selection =
    let next =
      List.filter
        (fun f ->
          if List.mem f !removed then false
          else if depends_on_removed f then begin
            removed := f :: !removed;
            false
          end
          else true)
        selection
    in
    if List.length next = List.length selection then next else fix next
  in
  let kept = fix (List.filter (fun f -> f <> name) (Feature.Config.to_names config)) in
  (Feature.Config.of_names kept, !removed)

let try_sql config sql =
  match Core.generate ~label:"configurator" config with
  | Error e -> Printf.printf "cannot generate: %s\n" (Fmt.str "%a" Core.pp_error e)
  | Ok g -> (
    match Core.parse_statement g sql with
    | Ok stmt ->
      Printf.printf "accepted: %s\n" (Sql_ast.Sql_printer.statement stmt)
    | Error e -> Printf.printf "rejected: %s\n" (Fmt.str "%a" Core.pp_error e))

let split_command line =
  match String.index_opt line ' ' with
  | None -> (String.trim line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let run initial =
  let config = ref initial in
  Printf.printf
    "sqlpl configurator — type 'help' for commands, 'quit' to leave.\n";
  print_status !config;
  let continue_loop = ref true in
  while !continue_loop do
    print_string "configure> ";
    match In_channel.input_line stdin with
    | None -> continue_loop := false
    | Some line -> (
      let cmd, arg = split_command line in
      match cmd with
      | "" -> ()
      | "quit" | "exit" -> continue_loop := false
      | "help" -> print_endline help_text
      | "list" ->
        List.iter print_endline
          (Feature.Tree.names Sql.Model.model.Feature.Model.concept)
      | "add" -> (
        match Feature.Tree.find Sql.Model.model.Feature.Model.concept arg with
        | None -> Printf.printf "unknown feature %S (see 'list')\n" arg
        | Some _ ->
          let before = Feature.Config.cardinal !config in
          config :=
            Sql.Model.close (Feature.Config.union !config (Feature.Config.of_names [ arg ]));
          Printf.printf "added %S (+%d features via closure)\n" arg
            (Feature.Config.cardinal !config - before);
          print_status !config)
      | "remove" ->
        if not (Feature.Config.mem arg !config) then
          Printf.printf "%S is not selected\n" arg
        else begin
          let next, removed = remove_feature !config arg in
          config := next;
          Printf.printf "removed %s\n" (String.concat ", " (List.rev removed));
          print_status !config
        end
      | "show" -> (
        let name = if arg = "" then "SQL:2003" else arg in
        match Sql.Model.diagram name with
        | Some tree -> print_string (Feature.Diagram.render_selected !config tree)
        | None -> Printf.printf "no diagram named %S\n" name)
      | "status" -> print_status !config
      | "fix" -> (
        match Sql.Model.validate !config with
        | [] -> print_endline "nothing to fix"
        | violations ->
          List.iter (fun s -> Printf.printf "%s\n" s) (suggestions !config violations))
      | "report" -> (
        match Core.generate ~label:"configurator" !config with
        | Ok g -> print_string (Report.to_string g)
        | Error e -> Printf.printf "cannot generate: %s\n" (Fmt.str "%a" Core.pp_error e))
      | "grammar" -> (
        match Sql.Model.compose !config with
        | Ok out -> print_string (Grammar.Printer.to_ebnf out.Compose.Composer.grammar)
        | Error e ->
          Printf.printf "cannot compose: %s\n" (Fmt.str "%a" Compose.Composer.pp_error e))
      | "try" -> if arg = "" then print_endline "usage: try <sql>" else try_sql !config arg
      | "save" ->
        if arg = "" then print_endline "usage: save <file>"
        else begin
          Config_file.save arg !config;
          Printf.printf "saved %d features to %s\n" (Feature.Config.cardinal !config) arg
        end
      | "load" ->
        if arg = "" then print_endline "usage: load <file>"
        else if not (Sys.file_exists arg) then Printf.printf "no such file: %s\n" arg
        else begin
          config := Sql.Model.close (Config_file.load arg);
          Printf.printf "loaded %s\n" arg;
          print_status !config
        end
      | "reset" -> (
        match arg, Dialects.Dialect.find arg with
        | "", _ ->
          config := Sql.Model.close (Feature.Config.of_names []);
          print_status !config
        | _, Some d ->
          config := d.Dialects.Dialect.config;
          print_status !config
        | _, None -> Printf.printf "unknown dialect %S\n" arg)
      | other -> Printf.printf "unknown command %S (try 'help')\n" other)
  done
