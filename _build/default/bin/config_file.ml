(* Reading and writing feature-selection files: one feature name per line,
   blank lines and '#' comments ignored. *)

let load path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let names =
    List.filter_map
      (fun line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then None else Some line)
      lines
  in
  Feature.Config.of_names names

let save path config =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "# sqlpl feature selection (%d features)\n"
        (Feature.Config.cardinal config);
      List.iter
        (fun name -> Printf.fprintf oc "%s\n" name)
        (Feature.Config.to_names config))
