(* Tests for the lint subsystem: diagnostics, LL(k<=2) lookahead, the
   grammar/token/model analyses, and the product-line gates (all six
   shipped dialects lint clean at severity Error; every LL(1) conflict is
   re-found with a concrete 1-2 token witness). *)

open Grammar.Builder
module D = Lint.Diagnostic
module LA = Lint.Lookahead

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags
let with_code code diags = List.filter (fun (d : D.t) -> String.equal d.D.code code) diags

(* --- Diagnostic ------------------------------------------------------- *)

let test_diagnostic_ordering () =
  let mk code severity =
    D.make ~code ~severity ~subject:"s" "m"
  in
  let diags = [ mk "b/info" D.Info; mk "a/warn" D.Warning; mk "c/err" D.Error ] in
  let sorted = List.sort D.compare diags in
  Alcotest.(check (list string))
    "errors first, then warnings, then info"
    [ "c/err"; "a/warn"; "b/info" ] (codes sorted);
  check_bool "has_errors" true (D.has_errors diags);
  check_int "one error" 1 (D.count D.Error diags);
  check_int "errors list" 1 (List.length (D.errors diags));
  check_bool "no errors without the error" false
    (D.has_errors (List.filter (fun d -> d.D.severity <> D.Error) diags))

let test_diagnostic_json () =
  let d =
    D.make ~code:"x/y" ~severity:D.Warning ~subject:{|a"b|}
      ~witness:[ "w1"; "w\\2" ] "line1\nline2"
  in
  let json = D.to_json d in
  let contains needle = Astring_contains.contains json needle in
  check_bool "escaped quote" true (contains {|"a\"b"|});
  check_bool "escaped newline" true (contains {|line1\nline2|});
  check_bool "escaped backslash" true (contains {|w\\2|});
  check_bool "severity field" true (contains {|"severity":"warning"|});
  check_bool "witness array" true (contains {|"witness":["w1",|})

(* --- Lookahead -------------------------------------------------------- *)

let test_lookahead_first_follow () =
  let g =
    grammar ~start:"expr"
      [
        rule "expr" [ [ nt "term"; star [ t "PLUS"; nt "term" ] ] ];
        rule "term" [ [ t "NUM" ]; [ t "LPAREN"; nt "expr"; t "RPAREN" ] ];
      ]
  in
  let la = LA.compute ~k:2 g in
  check_bool "first2 term has complete 1-yield NUM" true
    (LA.Seq_set.mem [ "NUM" ] (LA.first la "term"));
  check_bool "first2 term has LPAREN NUM" true
    (LA.Seq_set.mem [ "LPAREN"; "NUM" ] (LA.first la "term"));
  check_bool "follow2 of start contains EOF" true
    (LA.Seq_set.mem [ "EOF" ] (LA.follow la "expr"));
  check_bool "follow2 term sees PLUS then continuation" true
    (LA.Seq_set.exists
       (function "PLUS" :: _ -> true | _ -> false)
       (LA.follow la "term"))

let test_lookahead_k_bound () =
  let g = grammar ~start:"s" [ rule "s" [ [ t "A" ] ] ] in
  check_bool "k=3 rejected" true
    (try
       ignore (LA.compute ~k:3 g);
       false
     with Invalid_argument _ -> true)

let conflict_triples cs =
  List.map (fun (c : LA.conflict) -> (c.LA.lhs, c.LA.alt_a, c.LA.alt_b)) cs

let test_lookahead_k1_matches_ll1 () =
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ t "A"; t "B" ]; [ t "A"; t "C" ]; [ t "D" ] ];
        rule "u" [ [ nt "v"; t "X" ] ];
        rule "v" [ [ t "X" ]; [] ];
      ]
  in
  let ll1 =
    List.map
      (fun (c : Grammar.Analysis.conflict) ->
        (c.Grammar.Analysis.lhs, c.Grammar.Analysis.alt_a, c.Grammar.Analysis.alt_b))
      (Grammar.Analysis.ll1_conflicts g)
  in
  let lak1 = conflict_triples (LA.conflicts ~k:1 g) in
  Alcotest.(check (list (triple string int int)))
    "k=1 conflicts match ll1_conflicts"
    (List.sort compare ll1) (List.sort compare lak1)

let test_lookahead_k2_resolves () =
  (* A B | A C: ambiguous on the first token, distinguished by the second. *)
  let g =
    grammar ~start:"s" [ rule "s" [ [ t "A"; t "B" ]; [ t "A"; t "C" ] ] ]
  in
  check_int "one k=1 conflict" 1 (List.length (LA.conflicts ~k:1 g));
  check_int "no k=2 conflict" 0 (List.length (LA.conflicts ~k:2 g))

let test_lookahead_k2_persists () =
  (* A B C | A B D: the first two tokens agree; k=2 cannot separate them
     and the witness is exactly that 2-token prefix. *)
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ t "A"; t "B"; t "C" ]; [ t "A"; t "B"; t "D" ] ] ]
  in
  match LA.conflicts ~k:2 g with
  | [ c ] ->
    check_bool "witness is A B" true (List.mem [ "A"; "B" ] c.LA.witnesses)
  | cs -> Alcotest.failf "expected one k=2 conflict, got %d" (List.length cs)

(* --- Grammar lint ----------------------------------------------------- *)

let test_grammar_lint_clean () =
  let g =
    grammar ~start:"expr"
      [
        rule "expr" [ [ nt "term"; star [ t "PLUS"; nt "term" ] ] ];
        rule "term" [ [ t "NUM" ]; [ t "LPAREN"; nt "expr"; t "RPAREN" ] ];
      ]
  in
  Alcotest.(check (list string)) "no diagnostics" []
    (codes (Lint.Grammar_lint.check g))

let test_grammar_lint_structure () =
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ nt "missing"; t "A" ]; [ t "B" ]; [ t "B" ] ];
        rule "loop" [ [ nt "loop"; t "C" ] ];
        rule "island" [ [ t "D" ] ];
      ]
  in
  let diags = Lint.Grammar_lint.check g in
  (match with_code "grammar/undefined-nt" diags with
   | [ d ] ->
     check_bool "undefined is error" true (d.D.severity = D.Error);
     Alcotest.(check (list string)) "witness is reference chain"
       [ "s"; "missing" ] d.D.witness
   | ds -> Alcotest.failf "expected one undefined-nt, got %d" (List.length ds));
  (match with_code "grammar/unproductive" diags with
   | [ d ] ->
     Alcotest.(check string) "loop is unproductive" "loop" d.D.subject
   | ds -> Alcotest.failf "expected one unproductive, got %d" (List.length ds));
  check_bool "island unreachable" true
    (List.exists (fun (d : D.t) -> d.D.subject = "island")
       (with_code "grammar/unreachable" diags));
  (match with_code "grammar/duplicate-alt" diags with
   | [ d ] ->
     Alcotest.(check (list string)) "duplicate witness" [ "B" ] d.D.witness
   | ds -> Alcotest.failf "expected one duplicate-alt, got %d" (List.length ds))

let test_grammar_lint_conflict_split () =
  (* One conflict resolved at k=2 (Info), one persisting (Warning). *)
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ nt "res" ]; [ nt "per" ] ];
        rule "res" [ [ t "A"; t "B" ]; [ t "A"; t "C" ] ];
        rule "per" [ [ t "X"; t "Y"; t "P" ]; [ t "X"; t "Y"; t "Q" ] ];
      ]
  in
  let diags = Lint.Grammar_lint.check ~k:2 g in
  (match with_code "grammar/ll1-conflict" diags with
   | [ d ] ->
     check_bool "resolved conflict is info" true (d.D.severity = D.Info);
     Alcotest.(check (list string)) "1-token witness" [ "A" ] d.D.witness
   | ds -> Alcotest.failf "expected one ll1-conflict, got %d" (List.length ds));
  match with_code "grammar/ll2-conflict" diags with
  | [ d ] ->
    check_bool "persisting conflict is warning" true (d.D.severity = D.Warning);
    Alcotest.(check (list string)) "2-token witness" [ "X"; "Y" ] d.D.witness
  | ds -> Alcotest.failf "expected one ll2-conflict, got %d" (List.length ds)

(* --- Token lint ------------------------------------------------------- *)

let test_token_lint () =
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ t "SELECT"; t "EQ"; t "MYSTERY" ] ] ]
  in
  let set =
    [
      ("SELECT", Lexing_gen.Spec.Keyword "select");
      ("SELECT2", Lexing_gen.Spec.Keyword "Select");
      ("BAD_KW", Lexing_gen.Spec.Keyword "not a word");
      ("EQ", Lexing_gen.Spec.Punct "=");
      ("EQ2", Lexing_gen.Spec.Punct "=");
      ("LE", Lexing_gen.Spec.Punct "<=");
      ("LT", Lexing_gen.Spec.Punct "<");
    ]
  in
  let diags = Lint.Token_lint.check ~grammar:g set in
  check_int "two overlaps (keyword + punct)" 2
    (List.length (with_code "token/overlap" diags));
  check_bool "overlaps are errors" true
    (List.for_all (fun (d : D.t) -> d.D.severity = D.Error)
       (with_code "token/overlap" diags));
  (match with_code "token/keyword-shadowed" diags with
   | [ d ] -> Alcotest.(check string) "bad keyword" "BAD_KW" d.D.subject
   | ds -> Alcotest.failf "expected one shadowed keyword, got %d" (List.length ds));
  check_bool "prefix punct noted" true
    (List.exists (fun (d : D.t) -> d.D.subject = "LT")
       (with_code "token/punct-prefix" diags));
  (match with_code "token/undeclared" diags with
   | [ d ] -> Alcotest.(check string) "MYSTERY undeclared" "MYSTERY" d.D.subject
   | ds -> Alcotest.failf "expected one undeclared, got %d" (List.length ds));
  check_bool "unused tokens warned" true
    (List.exists (fun (d : D.t) -> d.D.subject = "LE")
       (with_code "token/unused" diags));
  check_bool "identifier_shaped" true (Lint.Token_lint.identifier_shaped "where_");
  check_bool "not identifier_shaped" false (Lint.Token_lint.identifier_shaped "<=")

(* --- Model lint ------------------------------------------------------- *)

let feature = Feature.Tree.feature
let leaf = Feature.Tree.leaf
let mand = Feature.Tree.mandatory
let optl = Feature.Tree.optional

let test_model_lint_dead_and_contradiction () =
  (* a requires b while a excludes b: a is dead and the pair contradicts. *)
  let concept = feature "root" [ optl (leaf "a"); optl (leaf "b") ] in
  let model =
    Feature.Model.make
      ~constraints:
        [ Feature.Model.Requires ("a", "b"); Feature.Model.Excludes ("a", "b") ]
      concept
  in
  check_bool "a dead" true (List.mem "a" (Lint.Model_lint.dead_features model));
  let diags = Lint.Model_lint.check model in
  check_bool "dead-feature error" true
    (List.exists (fun (d : D.t) -> d.D.subject = "a" && d.D.severity = D.Error)
       (with_code "model/dead-feature" diags));
  check_bool "contradiction error" true
    (with_code "model/contradiction" diags <> [])

let test_model_lint_false_optional () =
  (* o is optional in the diagram but required by the mandatory sibling. *)
  let concept = feature "root" [ mand (leaf "m"); optl (leaf "o") ] in
  let model =
    Feature.Model.make ~constraints:[ Feature.Model.Requires ("m", "o") ] concept
  in
  check_bool "(root, o) false optional" true
    (List.mem ("root", "o") (Lint.Model_lint.false_optional model));
  match with_code "model/false-optional" (Lint.Model_lint.check model) with
  | [ d ] ->
    check_bool "warning severity" true (d.D.severity = D.Warning);
    Alcotest.(check (list string)) "witness parent,feature" [ "root"; "o" ]
      d.D.witness
  | ds -> Alcotest.failf "expected one false-optional, got %d" (List.length ds)

let test_model_lint_redundant () =
  let concept = feature "root" [ optl (leaf "a"); optl (leaf "b") ] in
  let model =
    Feature.Model.make
      ~constraints:
        [ Feature.Model.Requires ("a", "b"); Feature.Model.Requires ("a", "b") ]
      concept
  in
  let dups =
    List.filter
      (fun (d : D.t) -> d.D.severity = D.Warning)
      (with_code "model/redundant-constraint" (Lint.Model_lint.check model))
  in
  check_int "duplicate constraint warned once" 1 (List.length dups)

let test_model_lint_registry () =
  let concept = feature "root" [ optl (leaf "a"); optl (leaf "b") ] in
  let model = Feature.Model.make concept in
  let fragments =
    [
      ("a", [ rule "x" [ [ nt "ghost"; t "A" ] ] ]);
      ("b", [ rule "y" [ [ t "B" ] ] ]);
    ]
  in
  let diags = Lint.Model_lint.check ~fragments model in
  check_bool "root fragment-missing info" true
    (List.exists (fun (d : D.t) -> d.D.subject = "root")
       (with_code "model/fragment-missing" diags));
  match with_code "model/undefined-nt" diags with
  | [ d ] ->
    Alcotest.(check string) "ghost nowhere defined" "ghost" d.D.subject;
    check_bool "error severity" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected one undefined-nt, got %d" (List.length ds)

let test_broken_selection_has_error_witness () =
  (* The acceptance-criterion scenario: a selected fragment's RHS references
     a non-terminal defined only by an unselected feature's fragment. *)
  let concept = feature "root" [ optl (leaf "a"); optl (leaf "b") ] in
  let model = Feature.Model.make concept in
  let fragments =
    [
      ("a", [ rule "x" [ [ nt "y"; t "A" ] ] ]);
      ("b", [ rule "y" [ [ t "B" ] ] ]);
    ]
  in
  let config = Feature.Config.of_names [ "root"; "a" ] in
  let diags = Lint.Model_lint.check_selection ~fragments model config in
  check_bool "non-empty diagnostics" true (diags <> []);
  match with_code "model/fragment-undefined-nt" diags with
  | [ d ] ->
    check_bool "error severity" true (d.D.severity = D.Error);
    Alcotest.(check (list string))
      "witness: feature, rule, missing nt, defining-feature hint"
      [ "a"; "x"; "y"; "b" ] d.D.witness;
    check_bool "hint names the repairing feature" true
      (Astring_contains.contains d.D.message {|selecting "b" would define it|})
  | ds ->
    Alcotest.failf "expected one fragment-undefined-nt, got %d" (List.length ds)

(* --- Product-line gates ----------------------------------------------- *)

let all_dialects () =
  let ds = Dialects.Dialect.all in
  check_int "six shipped dialects" 6 (List.length ds);
  ds

let test_dialects_lint_clean_at_error () =
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      match Sql.Model.compose_linted d.Dialects.Dialect.config with
      | Error _ -> Alcotest.failf "%s must compose" d.Dialects.Dialect.name
      | Ok out ->
        let diags = out.Compose.Composer.diagnostics in
        check_bool
          (Printf.sprintf "%s has lint output" d.Dialects.Dialect.name)
          true (diags <> []);
        List.iter
          (fun (e : D.t) ->
            Alcotest.failf "%s: unexpected error %s <%s>: %s"
              d.Dialects.Dialect.name e.D.code e.D.subject e.D.message)
          (D.errors diags))
    (all_dialects ())

let test_dialects_dispatch_coverage () =
  (* The product-line gate behind E17: any dialect that lints clean at
     Error must parse almost entirely on committed dispatch — at least 90%
     of its choice points decided by k <= 2 lookahead tables. A dialect
     falling under the floor means a newly introduced conflict demoted a
     whole region of the grammar to backtracking. *)
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      match Core.generate_dialect d with
      | Error _ -> Alcotest.failf "%s must generate" d.Dialects.Dialect.name
      | Ok g ->
        let s = Core.dispatch_summary g in
        let coverage = Parser_gen.Engine.coverage s in
        check_bool
          (Printf.sprintf "%s: %.1f%% of choice points committed (floor 90%%)"
             d.Dialects.Dialect.name (100. *. coverage))
          true (coverage >= 0.9))
    (all_dialects ())

let test_ll2_covers_every_ll1_conflict () =
  (* Every conflict ll1_conflicts reports must resurface as a lint
     diagnostic carrying a concrete 1-2 token witness sequence. *)
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      match Sql.Model.compose d.Dialects.Dialect.config with
      | Error _ -> Alcotest.failf "%s must compose" d.Dialects.Dialect.name
      | Ok out ->
        let g = out.Compose.Composer.grammar in
        let ll1 = Grammar.Analysis.ll1_conflicts g in
        let diags = Lint.Grammar_lint.check ~k:2 g in
        let conflict_diags =
          List.filter
            (fun (dg : D.t) ->
              dg.D.code = "grammar/ll1-conflict"
              || dg.D.code = "grammar/ll2-conflict")
            diags
        in
        check_int
          (Printf.sprintf "%s: one diagnostic per LL(1) conflict"
             d.Dialects.Dialect.name)
          (List.length ll1) (List.length conflict_diags);
        List.iter
          (fun (dg : D.t) ->
            let n = List.length dg.D.witness in
            check_bool
              (Printf.sprintf "%s: witness of %s has 1-2 tokens"
                 d.Dialects.Dialect.name dg.D.subject)
              true (n = 1 || n = 2))
          conflict_diags;
        List.iter
          (fun (c : Grammar.Analysis.conflict) ->
            check_bool
              (Printf.sprintf "%s: conflict <%s> re-found"
                 d.Dialects.Dialect.name c.Grammar.Analysis.lhs)
              true
              (List.exists
                 (fun (dg : D.t) -> dg.D.subject = c.Grammar.Analysis.lhs)
                 conflict_diags))
          ll1)
    (all_dialects ())

let test_lookahead_k1_parity_on_dialects () =
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      match Sql.Model.compose d.Dialects.Dialect.config with
      | Error _ -> Alcotest.failf "%s must compose" d.Dialects.Dialect.name
      | Ok out ->
        let g = out.Compose.Composer.grammar in
        let ll1 =
          List.sort compare
            (List.map
               (fun (c : Grammar.Analysis.conflict) ->
                 ( c.Grammar.Analysis.lhs,
                   c.Grammar.Analysis.alt_a,
                   c.Grammar.Analysis.alt_b ))
               (Grammar.Analysis.ll1_conflicts g))
        in
        let lak1 = List.sort compare (conflict_triples (LA.conflicts ~k:1 g)) in
        Alcotest.(check (list (triple string int int)))
          (Printf.sprintf "%s: k=1 lookahead = ll1_conflicts"
             d.Dialects.Dialect.name)
          ll1 lak1)
    (all_dialects ())

let test_run_combines_layers () =
  match Sql.Model.compose_linted (Feature.Config.full Sql.Model.model) with
  | Error _ -> Alcotest.fail "full config must compose"
  | Ok out ->
    let diags = out.Compose.Composer.diagnostics in
    let prefixes = [ "grammar/"; "token/"; "model/" ] in
    List.iter
      (fun p ->
        check_bool (p ^ " layer present or empty-by-analysis") true
          (List.for_all
             (fun (d : D.t) ->
               List.exists
                 (fun q -> String.starts_with ~prefix:q d.D.code)
                 prefixes)
             diags))
      prefixes;
    (* JSON report renders one line per diagnostic. *)
    let json = Lint.to_json_lines diags in
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' json)
    in
    check_int "one JSON line per diagnostic" (List.length diags)
      (List.length lines)

let suite =
  [
    Alcotest.test_case "diagnostic ordering" `Quick test_diagnostic_ordering;
    Alcotest.test_case "diagnostic json" `Quick test_diagnostic_json;
    Alcotest.test_case "lookahead first/follow" `Quick test_lookahead_first_follow;
    Alcotest.test_case "lookahead k bound" `Quick test_lookahead_k_bound;
    Alcotest.test_case "lookahead k1 = ll1" `Quick test_lookahead_k1_matches_ll1;
    Alcotest.test_case "lookahead k2 resolves" `Quick test_lookahead_k2_resolves;
    Alcotest.test_case "lookahead k2 persists" `Quick test_lookahead_k2_persists;
    Alcotest.test_case "grammar lint clean" `Quick test_grammar_lint_clean;
    Alcotest.test_case "grammar lint structure" `Quick test_grammar_lint_structure;
    Alcotest.test_case "grammar lint conflict split" `Quick
      test_grammar_lint_conflict_split;
    Alcotest.test_case "token lint" `Quick test_token_lint;
    Alcotest.test_case "model lint dead/contradiction" `Quick
      test_model_lint_dead_and_contradiction;
    Alcotest.test_case "model lint false optional" `Quick
      test_model_lint_false_optional;
    Alcotest.test_case "model lint redundant" `Quick test_model_lint_redundant;
    Alcotest.test_case "model lint registry" `Quick test_model_lint_registry;
    Alcotest.test_case "broken selection -> error with witness" `Quick
      test_broken_selection_has_error_witness;
    Alcotest.test_case "dialects lint clean at Error" `Quick
      test_dialects_lint_clean_at_error;
    Alcotest.test_case "dialects >=90% committed dispatch" `Quick
      test_dialects_dispatch_coverage;
    Alcotest.test_case "LL(2) covers every LL(1) conflict" `Quick
      test_ll2_covers_every_ll1_conflict;
    Alcotest.test_case "lookahead k1 parity on dialects" `Quick
      test_lookahead_k1_parity_on_dialects;
    Alcotest.test_case "run combines layers" `Quick test_run_combines_layers;
  ]
