(* End-to-end tests of the sqlpl command-line interface, driving the built
   binary. Skipped silently if the binary is not where dune puts it
   (e.g. when the test executable is run outside dune). *)

let binary =
  let candidates = [ "../bin/sqlpl.exe"; "_build/default/bin/sqlpl.exe" ] in
  List.find_opt Sys.file_exists candidates

let run_cli ?stdin_text args =
  match binary with
  | None -> None
  | Some bin ->
    let out_file = Filename.temp_file "sqlpl_cli" ".out" in
    let stdin_file =
      match stdin_text with
      | None -> None
      | Some text ->
        let f = Filename.temp_file "sqlpl_cli" ".in" in
        Out_channel.with_open_text f (fun oc -> output_string oc text);
        Some f
    in
    let redirect =
      match stdin_file with
      | None -> ""
      | Some f -> Printf.sprintf " < %s" (Filename.quote f)
    in
    let cmd =
      Printf.sprintf "%s %s > %s 2>&1%s" (Filename.quote bin)
        (String.concat " " (List.map Filename.quote args))
        (Filename.quote out_file) redirect
    in
    let status = Sys.command cmd in
    let output = In_channel.with_open_text out_file In_channel.input_all in
    Sys.remove out_file;
    Option.iter Sys.remove stdin_file;
    Some (status, output)

let check_bool = Alcotest.(check bool)
let contains = Astring_contains.contains

let expect ?stdin_text ~status ~needles args () =
  match run_cli ?stdin_text args with
  | None -> () (* binary unavailable; skip *)
  | Some (actual_status, output) ->
    Alcotest.(check int)
      (Printf.sprintf "exit status of %s" (String.concat " " args))
      status actual_status;
    List.iter
      (fun needle ->
        check_bool
          (Printf.sprintf "output of %s contains %S" (String.concat " " args) needle)
          true (contains output needle))
      needles

let test_dialects = expect ~status:0 ~needles:[ "tinysql"; "SCQL" ] [ "dialects" ]

let test_features_stats =
  expect ~status:0
    ~needles:[ "feature diagrams:"; "distinct features:" ]
    [ "features"; "--stats" ]

let test_diagram =
  expect ~status:0
    ~needles:[ "Query Specification"; "Set Quantifier"; "Select Sublist [1..*]" ]
    [ "diagram"; "Query Specification" ]

let test_diagram_selected =
  expect ~status:0
    ~needles:[ "[x] * From"; "[ ] o Joined Table" ]
    [ "diagram"; "--selected"; "tinysql"; "Table Expression" ]

let test_diagram_missing =
  expect ~status:124 ~needles:[ "no diagram named" ] [ "diagram"; "Nonsense" ]

let test_validate_dialect =
  expect ~status:0 ~needles:[ "valid" ] [ "validate"; "-d"; "tinysql" ]

let test_validate_violation =
  expect ~status:124
    ~needles:[ "OR group"; "violation" ]
    [ "validate"; "-f"; "Where" ]

let test_grammar =
  expect ~status:0
    ~needles:[ "<query_specification>"; "rules," ]
    [ "grammar"; "-d"; "minimal" ]

let test_parse_ast =
  expect ~status:0
    ~needles:[ "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024" ]
    [ "parse"; "-d"; "tinysql"; "--ast";
      "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024" ]

let test_parse_reject =
  (* In the minimal dialect the comma is not even a token: the rejection is
     lexical. A parse-level rejection needs known tokens in a bad order. *)
  expect ~status:124 ~needles:[ "lexical error" ]
    [ "parse"; "-d"; "minimal"; "SELECT a, b FROM t" ]

let test_parse_reject_syntactic =
  expect ~status:124 ~needles:[ "parse error" ]
    [ "parse"; "-d"; "minimal"; "SELECT FROM t" ]

let test_report =
  expect ~status:0
    ~needles:[ "grammar report: scql"; "statement classes" ]
    [ "report"; "-d"; "scql" ]

let test_emit =
  expect ~status:0 ~needles:[ "let parse tokens"; "p_query_specification" ]
    [ "emit"; "-d"; "minimal" ]

let test_run_script =
  expect ~status:0
    ~stdin_text:
      "CREATE TABLE t (a INTEGER);\nINSERT INTO t (a) VALUES (1), (2);\nSELECT COUNT(*) FROM t;"
    ~needles:[ "table t created"; "2 row(s) affected"; "(1 rows)" ]
    [ "run"; "-d"; "full" ]

let test_lint_minimal =
  expect ~status:0
    ~needles:[ "lint minimal"; "0 error(s)" ]
    [ "lint"; "minimal" ]

let test_lint_full =
  expect ~status:0
    ~needles:[ "lint full"; "0 error(s)" ]
    [ "lint"; "full" ]

let test_lint_json =
  expect ~status:0
    ~needles:[ "\"code\":"; "\"severity\":"; "\"witness\":" ]
    [ "lint"; "full"; "--format=json" ]

let test_lint_unknown_dialect =
  expect ~status:124 ~needles:[ "unknown dialect" ] [ "lint"; "nonsense" ]

let test_diff =
  expect ~status:0
    ~needles:[ "commonality:"; "only in tinysql"; "grammar size:" ]
    [ "diff"; "tinysql"; "scql" ]

let test_configure_session =
  expect ~status:0
    ~stdin_text:
      "add Where\nfix\nadd Equals\ntry SELECT a FROM t WHERE a = b\ntry SELECT a, b FROM t\nquit\n"
    ~needles:
      [
        "pick at least one of";
        "accepted: SELECT a FROM t WHERE a = b";
        "rejected:";
      ]
    [ "configure" ]

let test_config_file_roundtrip () =
  match binary with
  | None -> ()
  | Some _ ->
    let file = Filename.temp_file "sqlpl_features" ".txt" in
    (* Save a selection via the configurator, then use it with validate. *)
    (match
       run_cli
         ~stdin_text:(Printf.sprintf "add Where\nadd Equals\nsave %s\nquit\n" file)
         [ "configure" ]
     with
     | Some (0, _) -> ()
     | _ -> Alcotest.fail "configure save failed");
    (match run_cli [ "validate"; "-c"; file ] with
     | Some (0, out) -> check_bool "valid from file" true (contains out "valid")
     | _ -> Alcotest.fail "validate from file failed");
    Sys.remove file

let suite =
  [
    Alcotest.test_case "dialects" `Quick test_dialects;
    Alcotest.test_case "features --stats" `Quick test_features_stats;
    Alcotest.test_case "diagram" `Quick test_diagram;
    Alcotest.test_case "diagram --selected" `Quick test_diagram_selected;
    Alcotest.test_case "diagram missing" `Quick test_diagram_missing;
    Alcotest.test_case "validate dialect" `Quick test_validate_dialect;
    Alcotest.test_case "validate violation" `Quick test_validate_violation;
    Alcotest.test_case "grammar" `Quick test_grammar;
    Alcotest.test_case "parse --ast" `Quick test_parse_ast;
    Alcotest.test_case "parse reject (lexical)" `Quick test_parse_reject;
    Alcotest.test_case "parse reject (syntactic)" `Quick test_parse_reject_syntactic;
    Alcotest.test_case "report" `Quick test_report;
    Alcotest.test_case "emit" `Quick test_emit;
    Alcotest.test_case "run script" `Quick test_run_script;
    Alcotest.test_case "lint minimal" `Quick test_lint_minimal;
    Alcotest.test_case "lint full" `Quick test_lint_full;
    Alcotest.test_case "lint --format=json" `Quick test_lint_json;
    Alcotest.test_case "lint unknown dialect" `Quick test_lint_unknown_dialect;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "configure session" `Quick test_configure_session;
    Alcotest.test_case "config file round-trip" `Quick test_config_file_roundtrip;
  ]
