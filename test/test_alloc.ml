(* Allocation regression for the SoA accept path.

   The point of the struct-of-arrays token stream and the bytecode VM is
   that recognizing a statement allocates nothing per token: the scanner
   writes kind ids and offsets into reusable int arrays in a per-domain
   arena (keywords probed in place through [Ci_map.find_idx], extents found
   by argument-passing tail recursion — no refs, no options, no closures in
   the hot loop), and the VM reads the ids in place with explicit int
   stacks. No [Token.t] record, list cell, or CST node is built unless a
   CST leaf or an error edge demands one.

   What remains is a per-{e call} constant — the result boxing, the lazy
   materialization thunk, and the closure spine [Engine.parse_ids] builds
   for one run — which is independent of statement length. The tests
   therefore measure with [Gc.minor_words] over warm arenas and pin both
   axes separately:

   - the {e marginal} cost per token, measured as the allocation difference
     between a long and a short statement: budget {b 2.0 words/token}
     (measured ~0.3 — the amortized share of arena doubling and the
     occasional fallback-boundary list cell);
   - the {e fixed} cost per recognize call on a short-statement corpus:
     budget {b 2000 words/statement} (measured ~700);
   - and the SoA path must beat materialization: on a long statement,
     scan+recognize end to end must allocate under a quarter of what
     [scan_tokens] pays for the token records alone (~13 words/token). *)

let check_bool = Alcotest.(check bool)

let front_end name =
  match
    Core.generate_dialect
      (List.find
         (fun (d : Dialects.Dialect.t) -> d.Dialects.Dialect.name = name)
         Dialects.Dialect.all)
  with
  | Ok g -> g
  | Error e -> Alcotest.failf "generate %s: %a" name Core.pp_error e

(* A wide tinysql projection: m extra select-list items, one token of
   punctuation between each — token count grows linearly in m. *)
let wide_select m =
  let b = Buffer.create (16 * m) in
  Buffer.add_string b "SELECT nodeid";
  for i = 1 to m do
    Buffer.add_string b ", f";
    Buffer.add_string b (string_of_int i)
  done;
  Buffer.add_string b " FROM sensors WHERE temp > 100";
  Buffer.contents b

let token_count (g : Core.generated) sql =
  match Core.scan_soa g sql with
  | Ok soa -> Lexing_gen.Scanner.soa_count soa
  | Error e -> Alcotest.failf "scan %s: %a" sql Core.pp_error e

let measure_words f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let rounds = 40

let recognize_words (g : Core.generated) sql =
  (match Core.recognize g sql with
  | Ok () -> ()
  | Error e -> Alcotest.failf "recognize %s: %a" sql Core.pp_error e);
  measure_words (fun () ->
      for _ = 1 to rounds do
        ignore (Core.recognize g sql)
      done)
  /. float_of_int rounds

let test_marginal_words_per_token () =
  let g = front_end "tinysql" in
  let short = wide_select 5 and long = wide_select 500 in
  let dt = token_count g long - token_count g short in
  check_bool "token counts differ" true (dt > 400);
  let dw = recognize_words g long -. recognize_words g short in
  let per_token = dw /. float_of_int dt in
  check_bool
    (Printf.sprintf
       "recognition allocates %.2f words per additional token (budget 2.0)"
       per_token)
    true
    (per_token < 2.0)

let test_fixed_cost_per_statement () =
  let g = front_end "tinysql" in
  let corpus =
    List.filter
      (fun sql -> Result.is_ok (Core.recognize g sql))
      Corpus.tinysql_accept
  in
  check_bool "corpus is non-trivial" true (List.length corpus >= 3);
  let words =
    measure_words (fun () ->
        for _ = 1 to rounds do
          List.iter (fun sql -> ignore (Core.recognize g sql)) corpus
        done)
  in
  let per_stmt = words /. float_of_int (rounds * List.length corpus) in
  check_bool
    (Printf.sprintf
       "per-call overhead is %.0f words per statement (budget 2000)" per_stmt)
    true
    (per_stmt < 2000.)

let test_recognize_beats_materialization () =
  let g = front_end "tinysql" in
  let sql = wide_select 500 in
  let tokens = token_count g sql in
  ignore (Core.recognize g sql);
  let soa_words = recognize_words g sql in
  let mat_words =
    measure_words (fun () ->
        for _ = 1 to rounds do
          ignore (Core.scan_tokens g sql)
        done)
    /. float_of_int rounds
  in
  check_bool
    (Printf.sprintf
       "scan+recognize (%.1f w/token) allocates under a quarter of \
        scan_tokens alone (%.1f w/token)"
       (soa_words /. float_of_int tokens)
       (mat_words /. float_of_int tokens))
    true
    (soa_words < mat_words /. 4.)

let test_fused_marginal_is_free () =
  (* The fused cursor path end to end: scan+recognize in one pass must
     allocate nothing per token — the cursor writes into the same arena
     [scan_soa] uses (toplevel scan helpers, no closures per token), and
     the VM pulls kind ids as plain ints. Budget 0.1 w/token: tighter than
     the two-pass budget above because there is no separate scan call whose
     boxing could amortize in. *)
  let g = front_end "tinysql" in
  let short = wide_select 50 and long = wide_select 500 in
  let fused_words sql =
    (match Core.recognize_fused g sql with
    | Ok () -> ()
    | Error e -> Alcotest.failf "recognize_fused %s: %a" sql Core.pp_error e);
    measure_words (fun () ->
        for _ = 1 to rounds do
          ignore (Core.recognize_fused g sql)
        done)
    /. float_of_int rounds
  in
  let dt = token_count g long - token_count g short in
  let per_token = (fused_words long -. fused_words short) /. float_of_int dt in
  check_bool
    (Printf.sprintf
       "warm fused recognition allocates %.3f words per extra token (budget \
        0.1)"
       per_token)
    true
    (per_token < 0.1)

let test_scan_soa_marginal_is_free () =
  (* The scanner core in isolation: rescanning with 10x the tokens costs
     (almost) nothing more — the arena is reused, the hot loop allocates
     nothing per token. *)
  let g = front_end "tinysql" in
  let short = wide_select 50 and long = wide_select 500 in
  let scan_words sql =
    ignore (Core.scan_soa g sql);
    measure_words (fun () ->
        for _ = 1 to rounds do
          ignore (Core.scan_soa g sql)
        done)
    /. float_of_int rounds
  in
  let dt = token_count g long - token_count g short in
  let per_token = (scan_words long -. scan_words short) /. float_of_int dt in
  check_bool
    (Printf.sprintf "warm scan_soa allocates %.2f words per extra token"
       per_token)
    true
    (per_token < 1.0)

let suite =
  [
    Alcotest.test_case "recognition allocates < 2 words per marginal token"
      `Quick test_marginal_words_per_token;
    Alcotest.test_case "per-statement overhead is bounded" `Quick
      test_fixed_cost_per_statement;
    Alcotest.test_case "SoA path beats materialization by > 4x" `Quick
      test_recognize_beats_materialization;
    Alcotest.test_case "warm scan_soa is allocation-free per token" `Quick
      test_scan_soa_marginal_is_free;
    Alcotest.test_case "fused scan+recognize is allocation-free per token"
      `Quick test_fused_marginal_is_free;
  ]
