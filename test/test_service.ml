(* The parser-service layer: configuration-keyed cache (canonical digests,
   LRU bounds, exact counters) and batched parse sessions (per-statement
   results, aggregate stats), plus the cache-equivalence property: a
   warm-cache front-end and a cold-path front-end accept/reject identically
   over the shared corpora and a grammar-sampled corpus, for every shipped
   dialect. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dialect name =
  match Dialects.Dialect.find name with
  | Some d -> d
  | None -> Alcotest.failf "no dialect %s" name

let generate_ok ?label cache config =
  match Service.Cache.generate ?label cache config with
  | Ok g -> g
  | Error e -> Alcotest.failf "cache generate: %a" Core.pp_error e

(* --- digests ---------------------------------------------------------- *)

let test_digest_order_insensitive () =
  let a = Feature.Config.of_names [ "Where"; "Select List"; "From Clause" ] in
  let b = Feature.Config.of_names [ "From Clause"; "Where"; "Select List" ] in
  check_bool "same set, same digest" true
    (Service.Digest_key.equal
       (Service.Digest_key.of_config a)
       (Service.Digest_key.of_config b))

let test_digest_discriminates () =
  let digests =
    List.map
      (fun (d : Dialects.Dialect.t) ->
        Service.Digest_key.to_hex (Service.Digest_key.of_config d.config))
      Dialects.Dialect.all
  in
  check_int "six dialects, six digests" 6
    (List.length (List.sort_uniq compare digests));
  List.iter
    (fun h -> check_int "32 hex chars" 32 (String.length h))
    digests;
  (* Length-prefixing: distinct name lists must not collide after
     concatenation. *)
  check_bool "no concatenation collision" false
    (Service.Digest_key.equal
       (Service.Digest_key.of_config (Feature.Config.of_names [ "ab"; "c" ]))
       (Service.Digest_key.of_config (Feature.Config.of_names [ "a"; "bc" ])))

(* --- cache counters and LRU ------------------------------------------ *)

let test_counters_exact () =
  let cache = Service.Cache.create ~capacity:8 () in
  let tiny = (dialect "tinysql").Dialects.Dialect.config in
  let scql = (dialect "scql").Dialects.Dialect.config in
  ignore (generate_ok cache tiny);
  ignore (generate_ok cache tiny);
  ignore (generate_ok cache scql);
  ignore (generate_ok cache tiny);
  let s = Service.Cache.stats cache in
  check_int "lookups" 4 s.Service.Cache.lookups;
  check_int "hits" 2 s.Service.Cache.hits;
  check_int "misses" 2 s.Service.Cache.misses;
  check_int "hits + misses = lookups" s.Service.Cache.lookups
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check_int "entries" 2 s.Service.Cache.entries;
  check_int "no evictions" 0 s.Service.Cache.evictions;
  Service.Cache.reset_stats cache;
  let s = Service.Cache.stats cache in
  check_int "reset lookups" 0 s.Service.Cache.lookups;
  check_int "reset keeps entries" 2 s.Service.Cache.entries

let test_errors_not_cached () =
  let cache = Service.Cache.create () in
  let bogus = Feature.Config.of_names [ "No Such Feature" ] in
  (match Service.Cache.generate cache bogus with
  | Ok _ -> Alcotest.fail "bogus config must not generate"
  | Error _ -> ());
  (match Service.Cache.generate cache bogus with
  | Ok _ -> Alcotest.fail "bogus config must not generate"
  | Error _ -> ());
  let s = Service.Cache.stats cache in
  check_int "two lookups" 2 s.Service.Cache.lookups;
  check_int "both misses (errors are not cached)" 2 s.Service.Cache.misses;
  check_int "nothing retained" 0 s.Service.Cache.entries

let test_lru_eviction () =
  let cache = Service.Cache.create ~capacity:2 () in
  let config name = (dialect name).Dialects.Dialect.config in
  ignore (generate_ok cache (config "minimal"));
  ignore (generate_ok cache (config "scql"));
  (* Touch minimal so scql becomes the least recently used entry... *)
  ignore (generate_ok cache (config "minimal"));
  (* ...then overflow: scql must be evicted, minimal retained. *)
  ignore (generate_ok cache (config "tinysql"));
  let s = Service.Cache.stats cache in
  check_int "one eviction" 1 s.Service.Cache.evictions;
  check_int "at capacity" 2 s.Service.Cache.entries;
  check_bool "minimal survived (recently used)" true
    (Service.Cache.mem cache (config "minimal"));
  check_bool "scql evicted (least recently used)" false
    (Service.Cache.mem cache (config "scql"));
  (* Re-requesting the evicted entry is a miss that regenerates. *)
  ignore (generate_ok cache (config "scql"));
  let s = Service.Cache.stats cache in
  check_int "regeneration counted as miss" 4 s.Service.Cache.misses;
  check_int "second eviction" 2 s.Service.Cache.evictions

(* --- cache equivalence ------------------------------------------------ *)

let corpus_for name =
  let static =
    match name with
    | "minimal" -> Corpus.minimal_accept @ Corpus.minimal_reject
    | "scql" -> Corpus.scql_accept @ Corpus.scql_reject
    | "tinysql" -> Corpus.tinysql_accept @ Corpus.tinysql_reject
    | "embedded" -> Corpus.embedded_accept @ Corpus.embedded_reject
    | "analytics" -> Corpus.analytics_accept @ Corpus.analytics_reject
    | _ -> Corpus.full_accept
  in
  static @ Corpus.always_reject
  @ (try List.assoc name Corpus.unselected with Not_found -> [])

let test_cache_equivalence () =
  (* One small cache holds all six dialects at once; for every dialect the
     warm-cache front-end and a freshly generated cold-path front-end must
     agree statement-for-statement on the static corpora plus a
     grammar-sampled corpus. This is what rules out cache-keying bugs: a
     digest collision would hand back some other dialect's parser, which
     disagrees on essentially every line below. *)
  let cache = Service.Cache.create ~capacity:8 () in
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      ignore (generate_ok ~label:d.name cache d.config))
    Dialects.Dialect.all;
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      let warm = generate_ok ~label:d.name cache d.config in
      let cold =
        match Core.generate_dialect d with
        | Ok g -> g
        | Error e -> Alcotest.failf "cold generate %s: %a" d.name Core.pp_error e
      in
      let sampled = Service.Sentences.sample ~count:40 ~seed:4242 cold in
      List.iter
        (fun sql ->
          check_bool
            (Printf.sprintf "%s warm/cold agree on: %s" d.name sql)
            (Core.accepts cold sql) (Core.accepts warm sql))
        (corpus_for d.name @ sampled))
    Dialects.Dialect.all;
  let s = Service.Cache.stats cache in
  check_int "warm pass was all hits" s.Service.Cache.lookups
    (s.Service.Cache.hits + s.Service.Cache.misses);
  check_int "six misses total" 6 s.Service.Cache.misses;
  check_int "six hits total" 6 s.Service.Cache.hits

(* --- sessions --------------------------------------------------------- *)

let session_for name =
  match
    Service.Session.of_cache ~label:name
      (Service.Cache.create ())
      (dialect name).Dialects.Dialect.config
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "session %s: %a" name Core.pp_error e

let test_session_batch_stats () =
  let session = session_for "minimal" in
  let batch =
    Service.Session.parse_batch session
      [
        "SELECT a FROM t";                  (* ok: 4 tokens *)
        "SELECT DISTINCT a FROM t";         (* ok: 5 tokens *)
        "SELECT a FROM t GROUP BY a";       (* parse error at 'group' *)
        "SELECT a FROM";                    (* parse error at EOF *)
      ]
  in
  let s = batch.Service.Session.batch_stats in
  check_int "statements" 4 s.Service.Session.statements;
  check_int "accepted" 2 s.Service.Session.accepted;
  check_int "rejected" 2 s.Service.Session.rejected;
  check_int "tokens counted (EOF excluded)" (4 + 5 + 7 + 3)
    s.Service.Session.tokens;
  Alcotest.(check (list int))
    "items in order" [ 0; 1; 2; 3 ]
    (List.map
       (fun (i : Service.Session.item) -> i.Service.Session.index)
       batch.Service.Session.items);
  (match s.Service.Session.furthest_error with
  | None -> Alcotest.fail "furthest error must be reported"
  | Some (index, e) ->
    check_int "furthest failure is the GROUP BY statement" 2 index;
    check_bool "expected set non-empty" true (e.Parser_gen.Engine.expected <> []));
  ()

let test_session_totals_accumulate () =
  let session = session_for "tinysql" in
  let b1 = Service.Session.parse_batch session Corpus.tinysql_accept in
  let b2 = Service.Session.parse_batch session Corpus.tinysql_reject in
  let totals = Service.Session.totals session in
  check_int "totals statements"
    (b1.Service.Session.batch_stats.Service.Session.statements
    + b2.Service.Session.batch_stats.Service.Session.statements)
    totals.Service.Session.statements;
  check_int "totals accepted"
    (List.length Corpus.tinysql_accept)
    totals.Service.Session.accepted;
  check_int "totals tokens"
    (b1.Service.Session.batch_stats.Service.Session.tokens
    + b2.Service.Session.batch_stats.Service.Session.tokens)
    totals.Service.Session.tokens;
  check_bool "accumulated elapsed covers both batches" true
    (totals.Service.Session.elapsed
    >= b1.Service.Session.batch_stats.Service.Session.elapsed)

let test_batch_domains_deterministic () =
  (* Domain sharding is a pure scheduling decision: a 4-domain batch must
     be indistinguishable from the sequential run — same per-statement
     results in submission order, same aggregate counts, same furthest
     error — on a workload mixing accepts, rejects, and sampled
     sentences. *)
  let sequential = session_for "embedded" in
  let sharded = session_for "embedded" in
  let stmts =
    Corpus.embedded_accept @ Corpus.embedded_reject @ Corpus.always_reject
    @ Service.Sentences.sample ~count:30 ~seed:99
        (Service.Session.front_end sequential)
  in
  (* [~clamp:false] so the sharded path is genuinely exercised even on a
     single-core host, where the default clamp would collapse it to one
     domain. *)
  let b1 = Service.Session.parse_batch ~domains:1 sequential stmts in
  let b4 = Service.Session.parse_batch ~clamp:false ~domains:4 sharded stmts in
  List.iter2
    (fun (i1 : Service.Session.item) (i4 : Service.Session.item) ->
      check_int "same index" i1.Service.Session.index i4.Service.Session.index;
      Alcotest.(check string)
        "same statement" i1.Service.Session.sql i4.Service.Session.sql;
      check_int
        (Printf.sprintf "same token count: %s" i1.Service.Session.sql)
        i1.Service.Session.token_count i4.Service.Session.token_count;
      check_bool
        (Printf.sprintf "same result: %s" i1.Service.Session.sql)
        true
        (i1.Service.Session.result = i4.Service.Session.result))
    b1.Service.Session.items b4.Service.Session.items;
  let s1 = b1.Service.Session.batch_stats
  and s4 = b4.Service.Session.batch_stats in
  check_int "same statements" s1.Service.Session.statements
    s4.Service.Session.statements;
  check_int "same accepted" s1.Service.Session.accepted
    s4.Service.Session.accepted;
  check_int "same rejected" s1.Service.Session.rejected
    s4.Service.Session.rejected;
  check_int "same tokens" s1.Service.Session.tokens s4.Service.Session.tokens;
  check_bool "same furthest error" true
    (s1.Service.Session.furthest_error = s4.Service.Session.furthest_error);
  (* More domains than statements: workers are capped at the batch size. *)
  let b_over =
    Service.Session.parse_batch ~clamp:false ~domains:16 sharded
      [ "SELECT name FROM items"; "SELECT a FROM"; "DROP TABLE items" ]
  in
  check_int "oversubscribed batch parses everything" 3
    b_over.Service.Session.batch_stats.Service.Session.statements;
  check_int "oversubscribed batch accepts" 2
    b_over.Service.Session.batch_stats.Service.Session.accepted

let test_batch_domains_clamped () =
  (* By default a request for more domains than the runtime recommends is
     clamped (oversharding a small host only adds spawn and contention
     cost): the batch still parses everything, in submission order, with
     results identical to the sequential run, and [shards] records what
     actually ran. *)
  let reference = session_for "embedded" in
  let clamped = session_for "embedded" in
  let stmts = Corpus.embedded_accept @ Corpus.embedded_reject in
  let b1 = Service.Session.parse_batch ~domains:1 reference stmts in
  let b8 = Service.Session.parse_batch ~domains:8 clamped stmts in
  check_bool "shards never exceed the recommendation" true
    (b8.Service.Session.shards <= Domain.recommended_domain_count ());
  check_int "clamped batch parses everything"
    b1.Service.Session.batch_stats.Service.Session.statements
    b8.Service.Session.batch_stats.Service.Session.statements;
  List.iter2
    (fun (i1 : Service.Session.item) (i8 : Service.Session.item) ->
      check_int "order unchanged" i1.Service.Session.index
        i8.Service.Session.index;
      check_bool
        (Printf.sprintf "same result: %s" i1.Service.Session.sql)
        true
        (i1.Service.Session.result = i8.Service.Session.result))
    b1.Service.Session.items b8.Service.Session.items;
  (* Opting out keeps the requested shard count (capped by batch size). *)
  let unclamped =
    Service.Session.parse_batch ~clamp:false ~domains:8 clamped stmts
  in
  check_int "clamp:false honors the request" (min 8 (List.length stmts))
    unclamped.Service.Session.shards

let test_vm_session_equivalence () =
  (* The engine knob is a pure performance choice: a VM session (SoA stream
     + bytecode VM) must return item-for-item identical results and token
     counts to a committed-loop session over the same cache entry, on a
     workload mixing accepts, rejects, lexical failures, and sampled
     sentences — sharded and not. *)
  let cache = Service.Cache.create () in
  let config = (dialect "embedded").Dialects.Dialect.config in
  let committed =
    match Service.Session.of_cache ~label:"embedded" cache config with
    | Ok s -> s
    | Error e -> Alcotest.failf "session: %a" Core.pp_error e
  in
  let vm =
    match
      Service.Session.of_cache ~label:"embedded" ~engine:`Vm cache config
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "vm session: %a" Core.pp_error e
  in
  check_bool "engine recorded" true (Service.Session.engine vm = `Vm);
  check_bool "one cache entry serves both" true
    (Service.Session.front_end committed == Service.Session.front_end vm);
  let stmts =
    Corpus.embedded_accept @ Corpus.embedded_reject @ Corpus.always_reject
    @ Service.Sentences.sample ~count:30 ~seed:77
        (Service.Session.front_end committed)
  in
  let check_same label (bc : Service.Session.batch)
      (bv : Service.Session.batch) =
    List.iter2
      (fun (ic : Service.Session.item) (iv : Service.Session.item) ->
        check_int
          (Printf.sprintf "%s: same token count: %s" label
             ic.Service.Session.sql)
          ic.Service.Session.token_count iv.Service.Session.token_count;
        check_bool
          (Printf.sprintf "%s: same result: %s" label ic.Service.Session.sql)
          true
          (ic.Service.Session.result = iv.Service.Session.result))
      bc.Service.Session.items bv.Service.Session.items;
    check_bool
      (Printf.sprintf "%s: same furthest error" label)
      true
      (bc.Service.Session.batch_stats.Service.Session.furthest_error
      = bv.Service.Session.batch_stats.Service.Session.furthest_error)
  in
  check_same "sequential"
    (Service.Session.parse_batch committed stmts)
    (Service.Session.parse_batch vm stmts);
  check_same "sharded"
    (Service.Session.parse_batch ~clamp:false ~domains:4 committed stmts)
    (Service.Session.parse_batch ~clamp:false ~domains:4 vm stmts)

let test_session_script_split () =
  let session = session_for "minimal" in
  let batch =
    Service.Session.parse_script session
      "SELECT a FROM t; SELECT DISTINCT a FROM t;"
  in
  check_int "two statements" 2
    batch.Service.Session.batch_stats.Service.Session.statements;
  check_int "both accepted" 2
    batch.Service.Session.batch_stats.Service.Session.accepted

let suite =
  [
    Alcotest.test_case "digest is order-insensitive" `Quick
      test_digest_order_insensitive;
    Alcotest.test_case "digest discriminates configurations" `Quick
      test_digest_discriminates;
    Alcotest.test_case "counters are exact" `Quick test_counters_exact;
    Alcotest.test_case "errors are not cached" `Quick test_errors_not_cached;
    Alcotest.test_case "bounded LRU evicts least recently used" `Quick
      test_lru_eviction;
    Alcotest.test_case "warm and cold front-ends agree (all dialects)" `Quick
      test_cache_equivalence;
    Alcotest.test_case "batch stats" `Quick test_session_batch_stats;
    Alcotest.test_case "session totals accumulate" `Quick
      test_session_totals_accumulate;
    Alcotest.test_case "domain-sharded batches are deterministic" `Quick
      test_batch_domains_deterministic;
    Alcotest.test_case "domain requests are clamped by default" `Quick
      test_batch_domains_clamped;
    Alcotest.test_case "VM sessions are indistinguishable from committed"
      `Quick test_vm_session_equivalence;
    Alcotest.test_case "script batches split on semicolons" `Quick
      test_session_script_split;
  ]
