(* Tests for nullable/FIRST/FOLLOW, LL(1) conflicts and left recursion. *)

open Grammar
open Grammar.Builder
module SS = Analysis.String_set

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let set_to_sorted s = SS.elements s

let check_set msg expected actual =
  Alcotest.(check (list string)) msg (List.sort String.compare expected)
    (set_to_sorted actual)

(* Classic expression grammar in EBNF form. *)
let expr_grammar =
  grammar ~start:"expr"
    [
      rule "expr" [ [ nt "term"; star [ t "PLUS"; nt "term" ] ] ];
      rule "term" [ [ nt "factor"; star [ t "TIMES"; nt "factor" ] ] ];
      rule "factor" [ [ t "NUM" ]; [ t "LPAREN"; nt "expr"; t "RPAREN" ] ];
    ]

let test_nullable () =
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ nt "a"; t "X" ] ];
        rule "a" [ [ opt [ t "Y" ] ] ];
        rule "b" [ [ t "Z" ] ];
      ]
  in
  let an = Analysis.compute g in
  check_bool "a nullable" true (SS.mem "a" an.Analysis.nullable);
  check_bool "b not nullable" false (SS.mem "b" an.Analysis.nullable);
  check_bool "s not nullable" false (SS.mem "s" an.Analysis.nullable)

let test_nullable_indirect () =
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ nt "a"; nt "b" ] ]; rule "a" [ [] ]; rule "b" [ [ opt [ t "X" ] ] ] ]
  in
  let an = Analysis.compute g in
  check_bool "s nullable through chain" true (SS.mem "s" an.Analysis.nullable)

let test_first_sets () =
  let an = Analysis.compute expr_grammar in
  let first n = Analysis.String_map.find n an.Analysis.first in
  check_set "factor" [ "NUM"; "LPAREN" ] (first "factor");
  check_set "expr inherits" [ "NUM"; "LPAREN" ] (first "expr")

let test_first_through_nullable () =
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ nt "a"; t "X" ] ]; rule "a" [ [ opt [ t "Y" ] ] ] ]
  in
  let an = Analysis.compute g in
  check_set "first s includes X via nullable a" [ "X"; "Y" ]
    (Analysis.String_map.find "s" an.Analysis.first)

let test_follow_sets () =
  let an = Analysis.compute expr_grammar in
  let follow n = Analysis.String_map.find n an.Analysis.follow in
  check_set "follow expr" [ "EOF"; "RPAREN" ] (follow "expr");
  check_set "follow term" [ "EOF"; "PLUS"; "RPAREN" ] (follow "term");
  check_set "follow factor" [ "EOF"; "PLUS"; "TIMES"; "RPAREN" ] (follow "factor")

let test_seq_first_nullable () =
  let an = Analysis.compute expr_grammar in
  check_bool "star is nullable" true
    (Analysis.seq_nullable an expr_grammar [ star [ t "PLUS" ] ]);
  check_set "seq first" [ "NUM"; "LPAREN" ]
    (Analysis.seq_first an expr_grammar [ nt "expr" ])

let test_ll1_no_conflicts () =
  check_int "expression grammar is LL(1)" 0
    (List.length (Analysis.ll1_conflicts expr_grammar))

let test_ll1_conflict_detected () =
  let g =
    grammar ~start:"s" [ rule "s" [ [ t "A"; t "B" ]; [ t "A"; t "C" ] ] ]
  in
  let conflicts = Analysis.ll1_conflicts g in
  check_int "one conflict" 1 (List.length conflicts);
  match conflicts with
  | [ c ] -> check_set "overlap is A" [ "A" ] c.Analysis.overlap
  | _ -> Alcotest.fail "expected one conflict"

let test_ll1_nullable_follow_conflict () =
  (* s : a X ; a : [X] — the optional alternative conflicts with FOLLOW. *)
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ nt "a"; t "X" ] ]; rule "a" [ [ t "X" ]; [] ] ]
  in
  check_bool "conflict detected" true (Analysis.ll1_conflicts g <> [])

let test_left_recursion_direct () =
  let g = grammar ~start:"e" [ rule "e" [ [ nt "e"; t "PLUS"; t "N" ]; [ t "N" ] ] ] in
  Alcotest.(check (list string)) "e is left recursive" [ "e" ]
    (Analysis.left_recursive g)

let test_left_recursion_indirect () =
  let g =
    grammar ~start:"a"
      [ rule "a" [ [ nt "b"; t "X" ] ]; rule "b" [ [ nt "a"; t "Y" ]; [ t "Z" ] ] ]
  in
  let lr = Analysis.left_recursive g in
  check_bool "a detected" true (List.mem "a" lr);
  check_bool "b detected" true (List.mem "b" lr)

let test_left_recursion_through_nullable () =
  (* a : b a — left recursive because b is nullable. *)
  let g =
    grammar ~start:"a"
      [ rule "a" [ [ nt "b"; nt "a"; t "X" ]; [ t "Y" ] ]; rule "b" [ [ opt [ t "Z" ] ] ] ]
  in
  check_bool "nullable prefix left recursion" true
    (List.mem "a" (Analysis.left_recursive g))

let test_left_recursion_mutual_three_way () =
  (* a -> b -> c -> a: every member of the cycle is reported. *)
  let g =
    grammar ~start:"a"
      [
        rule "a" [ [ nt "b"; t "X" ]; [ t "N" ] ];
        rule "b" [ [ nt "c"; t "Y" ] ];
        rule "c" [ [ nt "a"; t "Z" ] ];
      ]
  in
  let lr = Analysis.left_recursive g in
  List.iter
    (fun n -> check_bool (n ^ " in three-way cycle") true (List.mem n lr))
    [ "a"; "b"; "c" ]

let test_left_recursion_epsilon_cycle () =
  (* The cycle runs entirely through optional (epsilon-possible) prefixes:
     a : [b] Y and b : [a] Z reach each other without consuming a terminal,
     and e : [e] X reaches itself. The start rule s is not on a cycle. *)
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ nt "a"; nt "e"; t "X" ] ];
        rule "a" [ [ opt [ nt "b" ]; t "Y" ] ];
        rule "b" [ [ opt [ nt "a" ]; t "Z" ] ];
        rule "e" [ [ opt [ nt "e" ]; t "X" ] ];
      ]
  in
  let lr = Analysis.left_recursive g in
  check_bool "a in epsilon cycle" true (List.mem "a" lr);
  check_bool "b in epsilon cycle" true (List.mem "b" lr);
  check_bool "e self epsilon cycle" true (List.mem "e" lr);
  check_bool "s not recursive" false (List.mem "s" lr)

let test_no_left_recursion () =
  Alcotest.(check (list string)) "expression grammar clean" []
    (Analysis.left_recursive expr_grammar)

let test_full_sql_grammar_is_analyzable () =
  (* The composed full SQL grammar: no left recursion (required by the
     generator) and FIRST of the start covers all statement openers. *)
  match Sql.Model.compose (Feature.Config.full Sql.Model.model) with
  | Error _ -> Alcotest.fail "full config must compose"
  | Ok out ->
    let g = out.Compose.Composer.grammar in
    Alcotest.(check (list string)) "no left recursion" [] (Analysis.left_recursive g);
    let an = Analysis.compute g in
    let first = Analysis.String_map.find "sql_statement" an.Analysis.first in
    List.iter
      (fun kw -> check_bool (kw ^ " starts a statement") true (SS.mem kw first))
      [ "SELECT"; "INSERT"; "UPDATE"; "DELETE"; "CREATE"; "DROP"; "GRANT"; "COMMIT" ]

let suite =
  [
    Alcotest.test_case "nullable" `Quick test_nullable;
    Alcotest.test_case "nullable indirect" `Quick test_nullable_indirect;
    Alcotest.test_case "first sets" `Quick test_first_sets;
    Alcotest.test_case "first through nullable" `Quick test_first_through_nullable;
    Alcotest.test_case "follow sets" `Quick test_follow_sets;
    Alcotest.test_case "seq first/nullable" `Quick test_seq_first_nullable;
    Alcotest.test_case "ll1 clean grammar" `Quick test_ll1_no_conflicts;
    Alcotest.test_case "ll1 conflict detected" `Quick test_ll1_conflict_detected;
    Alcotest.test_case "ll1 nullable/follow conflict" `Quick test_ll1_nullable_follow_conflict;
    Alcotest.test_case "left recursion direct" `Quick test_left_recursion_direct;
    Alcotest.test_case "left recursion indirect" `Quick test_left_recursion_indirect;
    Alcotest.test_case "left recursion nullable prefix" `Quick
      test_left_recursion_through_nullable;
    Alcotest.test_case "left recursion mutual three-way" `Quick
      test_left_recursion_mutual_three_way;
    Alcotest.test_case "left recursion epsilon cycle" `Quick
      test_left_recursion_epsilon_cycle;
    Alcotest.test_case "no false left recursion" `Quick test_no_left_recursion;
    Alcotest.test_case "full SQL grammar analyzable" `Quick
      test_full_sql_grammar_is_analyzable;
  ]
