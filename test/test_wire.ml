(* Property tests for the service wire codec: binary and JSON encodings
   round-trip arbitrary frames (payloads with embedded newlines, NUL bytes,
   raw non-ASCII, empty batches), the two encodings agree frame for frame,
   and decoding hostile input — truncations, oversized length prefixes,
   random bytes — returns structured errors, never raises, and never
   over-allocates. *)

module Gen = QCheck.Gen
module Wire = Service.Wire

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- generators --------------------------------------------------------- *)

(* Payload bytes draw from the full byte range, weighted toward the nasty
   cases: newlines (the JSON framing delimiter), NUL, quotes, backslashes,
   and bytes above 0x7f (raw UTF-8 or not). *)
let gen_byte =
  Gen.frequency
    [
      (6, Gen.char_range 'a' 'z');
      (1, Gen.return '\n');
      (1, Gen.return '\000');
      (1, Gen.return '"');
      (1, Gen.return '\\');
      (1, Gen.char_range '\128' '\255');
      (1, Gen.char_range '\000' '\031');
    ]

let gen_string = Gen.string_size ~gen:gen_byte (Gen.int_bound 40)
let gen_small_list g = Gen.list_size (Gen.int_bound 5) g

let gen_span =
  Gen.map3
    (fun line column offset -> { Lexing_gen.Token.line; column; offset })
    (Gen.int_bound 10_000) (Gen.int_bound 500) (Gen.int_bound 1_000_000)

let gen_code =
  Gen.oneofl
    [
      Wire.Bad_frame; Wire.Oversized; Wire.Bad_hello; Wire.Unknown_dialect;
      Wire.Invalid_config; Wire.Unknown_digest; Wire.Lex_error;
      Wire.Parse_error; Wire.Unsupported; Wire.Io; Wire.Internal;
    ]

let gen_error =
  let open Gen in
  gen_code >>= fun code ->
  gen_string >>= fun message ->
  option gen_string >>= fun query ->
  option gen_span >>= fun span ->
  option gen_string >>= fun found ->
  gen_small_list gen_string >|= fun expected ->
  { Wire.code; message; query; span; found; expected }

let gen_engine = Gen.oneofl [ `Committed; `Vm ]

let gen_selection =
  Gen.oneof
    [
      Gen.map (fun s -> Wire.Dialect s) gen_string;
      Gen.map (fun l -> Wire.Features l) (gen_small_list gen_string);
      Gen.map (fun s -> Wire.Digest s) gen_string;
    ]

let gen_outcome =
  Gen.oneof
    [
      Gen.map2
        (fun tokens cst -> Wire.Accepted { tokens; cst })
        (Gen.int_bound 100_000) (Gen.option gen_string);
      Gen.map (fun e -> Wire.Rejected e) gen_error;
    ]

let gen_frame =
  let open Gen in
  oneof
    [
      map3
        (fun client engine selection -> Wire.Hello { client; engine; selection })
        gen_string gen_engine gen_selection;
      (gen_string >>= fun digest ->
       gen_string >>= fun label ->
       int_bound 200 >>= fun features ->
       gen_engine >|= fun engine ->
       Wire.Hello_ok { digest; label; features; engine });
      map3
        (fun id mode statements -> Wire.Request { id; mode; statements })
        (int_bound 1_000_000)
        (oneofl [ Wire.Cst; Wire.Recognize ])
        (gen_small_list gen_string);
      (int_bound 1_000_000 >>= fun id ->
       gen_small_list gen_outcome >>= fun items ->
       int_bound 1000 >>= fun statements ->
       int_bound 1000 >>= fun accepted ->
       int_bound 1000 >>= fun rejected ->
       int_bound 100_000 >>= fun tokens ->
       map Int64.of_int (int_bound 1_000_000_000) >|= fun elapsed_ns ->
       Wire.Reply
         { id; items;
           stats = { statements; accepted; rejected; tokens; elapsed_ns } });
      map (fun e -> Wire.Error e) gen_error;
      map (fun p -> Wire.Ping p) gen_string;
      map (fun p -> Wire.Pong p) gen_string;
      return Wire.Bye;
    ]

let print_frame f = Fmt.str "%a" Wire.pp_frame f
let arb_frame = QCheck.make ~print:print_frame gen_frame

(* --- round trips --------------------------------------------------------- *)

let binary_roundtrip =
  QCheck.Test.make ~count:500 ~name:"binary decode . encode = id" arb_frame
    (fun frame ->
      match Wire.decode (Wire.encode frame) with
      | Ok frame' -> frame' = frame
      | Error e -> QCheck.Test.fail_reportf "decode: %a" Wire.pp_error e)

let json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"JSON decode . encode = id" arb_frame
    (fun frame ->
      match Wire.decode_json (Wire.encode_json frame) with
      | Ok frame' -> frame' = frame
      | Error e -> QCheck.Test.fail_reportf "decode_json: %a" Wire.pp_error e)

(* The newline-JSON debug framing only works if a frame is exactly one
   line: every embedded newline must be escaped away. *)
let json_single_line =
  QCheck.Test.make ~count:500 ~name:"JSON encoding is one line" arb_frame
    (fun frame ->
      let s = Wire.encode_json frame in
      String.length s > 0
      && s.[String.length s - 1] = '\n'
      && not (String.contains (String.sub s 0 (String.length s - 1)) '\n'))

(* Both encodings carry the same frame: decoding the JSON form yields
   exactly what decoding the binary form yields. *)
let encodings_agree =
  QCheck.Test.make ~count:500 ~name:"JSON mode agrees with binary mode"
    arb_frame (fun frame ->
      match (Wire.decode (Wire.encode frame), Wire.decode_json (Wire.encode_json frame)) with
      | Ok a, Ok b -> a = b && a = frame
      | _ -> false)

(* --- hostile input ------------------------------------------------------- *)

let gen_frame_and_cut =
  let open Gen in
  gen_frame >>= fun frame ->
  let encoded = Wire.encode frame in
  int_range 0 (String.length encoded - 1) >|= fun cut -> (frame, cut)

let truncation_is_structured =
  QCheck.Test.make ~count:500
    ~name:"truncated binary frame decodes to bad_frame, not an exception"
    (QCheck.make
       ~print:(fun (f, cut) -> Printf.sprintf "%s cut at %d" (print_frame f) cut)
       gen_frame_and_cut)
    (fun (frame, cut) ->
      let encoded = Wire.encode frame in
      match Wire.decode (String.sub encoded 0 cut) with
      | Ok _ -> false (* a strict prefix can never be a complete frame *)
      | Error e -> e.Wire.code = Wire.Bad_frame)

let oversized_is_structured () =
  (* A length prefix beyond the limit must be rejected from the four header
     bytes alone — before any allocation the prefix asks for. *)
  let huge = "\255\255\255\255payload" in
  (match Wire.decode huge with
  | Error e -> Alcotest.(check bool) "oversized" true (e.Wire.code = Wire.Oversized)
  | Ok _ -> Alcotest.fail "4 GiB frame accepted");
  let legit = Wire.encode (Wire.Ping (String.make 256 'x')) in
  (match Wire.decode ~max_frame:64 legit with
  | Error e ->
    Alcotest.(check bool) "small limit" true (e.Wire.code = Wire.Oversized)
  | Ok _ -> Alcotest.fail "frame over the connection limit accepted");
  (* A lying *inner* length field (a string claiming more bytes than the
     frame holds) is a bad frame, caught by the bounds check. *)
  let lying =
    let b = Buffer.create 16 in
    Buffer.add_string b "\000\000\000\006";
    (* tag=ping *) Buffer.add_char b '\006';
    (* string length 2^24, one actual byte *)
    Buffer.add_string b "\001\000\000\000x";
    Buffer.contents b
  in
  match Wire.decode lying with
  | Error e -> Alcotest.(check bool) "lying length" true (e.Wire.code = Wire.Bad_frame)
  | Ok _ -> Alcotest.fail "lying inner length accepted"

let garbage_never_raises =
  QCheck.Test.make ~count:1000 ~name:"binary decode is total on random bytes"
    (QCheck.make ~print:String.escaped
       (Gen.string_size ~gen:(Gen.char_range '\000' '\255') (Gen.int_bound 64)))
    (fun s ->
      match Wire.decode s with Ok _ -> true | Error _ -> true)

let json_garbage_never_raises =
  QCheck.Test.make ~count:1000 ~name:"JSON decode is total on random bytes"
    (QCheck.make ~print:String.escaped
       (Gen.string_size ~gen:(Gen.char_range '\000' '\255') (Gen.int_bound 64)))
    (fun s ->
      match Wire.decode_json s with Ok _ -> true | Error _ -> true)

(* --- specifics ----------------------------------------------------------- *)

let empty_batch_roundtrips () =
  let frame = Wire.Request { Wire.id = 0; mode = Wire.Cst; statements = [] } in
  (match Wire.decode (Wire.encode frame) with
  | Ok f -> Alcotest.(check bool) "binary" true (f = frame)
  | Error e -> Alcotest.failf "binary: %a" Wire.pp_error e);
  match Wire.decode_json (Wire.encode_json frame) with
  | Ok f -> Alcotest.(check bool) "json" true (f = frame)
  | Error e -> Alcotest.failf "json: %a" Wire.pp_error e

let nasty_statement_roundtrips () =
  let nasty = "SELECT 'a\nb' FROM \000t; -- caf\xc3\xa9 \"quote\" \\slash" in
  let frame =
    Wire.Request { Wire.id = 7; mode = Wire.Recognize; statements = [ nasty; "" ] }
  in
  List.iter
    (fun enc ->
      match Wire.decode_as enc (Wire.encode_as enc frame) with
      | Ok f -> Alcotest.(check bool) "roundtrip" true (f = frame)
      | Error e -> Alcotest.failf "%a" Wire.pp_error e)
    [ Wire.Binary; Wire.Json ]

let trailing_bytes_rejected () =
  let s = Wire.encode Wire.Bye ^ "x" in
  match Wire.decode s with
  | Error e -> Alcotest.(check bool) "bad_frame" true (e.Wire.code = Wire.Bad_frame)
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

(* The reader pulls frames out of a dribbled stream: one byte per read
   call, several frames back to back, both encodings. *)
let reader_reassembles_dribble () =
  List.iter
    (fun enc ->
      let frames =
        [
          Wire.Ping "a\nb\000c";
          Wire.Request { Wire.id = 1; mode = Wire.Cst; statements = [ "SELECT 1" ] };
          Wire.Bye;
        ]
      in
      let stream = String.concat "" (List.map (Wire.encode_as enc) frames) in
      let pos = ref 0 in
      let read buf off _len =
        if !pos >= String.length stream then 0
        else begin
          Bytes.set buf off stream.[!pos];
          incr pos;
          1
        end
      in
      let r = Wire.reader read in
      List.iter
        (fun expect ->
          match Wire.read_frame r with
          | Ok (Some f) -> Alcotest.(check bool) "frame" true (f = expect)
          | Ok None -> Alcotest.fail "premature end of stream"
          | Error e -> Alcotest.failf "%a" Wire.pp_error e)
        frames;
      match Wire.read_frame r with
      | Ok None -> ()
      | Ok (Some f) -> Alcotest.failf "unexpected frame %a" Wire.pp_frame f
      | Error e -> Alcotest.failf "%a" Wire.pp_error e)
    [ Wire.Binary; Wire.Json ]

let reader_reports_truncation () =
  let whole = Wire.encode (Wire.Ping "hello") in
  let cut = String.sub whole 0 (String.length whole - 2) in
  let pos = ref 0 in
  let read buf off len =
    let n = min len (String.length cut - !pos) in
    Bytes.blit_string cut !pos buf off n;
    pos := !pos + n;
    n
  in
  let r = Wire.reader read in
  match Wire.read_frame r with
  | Error e -> Alcotest.(check bool) "bad_frame" true (e.Wire.code = Wire.Bad_frame)
  | Ok _ -> Alcotest.fail "truncated stream yielded a frame"

let suite =
  [
    to_alcotest binary_roundtrip;
    to_alcotest json_roundtrip;
    to_alcotest json_single_line;
    to_alcotest encodings_agree;
    to_alcotest truncation_is_structured;
    to_alcotest garbage_never_raises;
    to_alcotest json_garbage_never_raises;
    Alcotest.test_case "oversized and lying lengths are structured" `Quick
      oversized_is_structured;
    Alcotest.test_case "empty batch round-trips" `Quick empty_batch_roundtrips;
    Alcotest.test_case "nasty statement round-trips" `Quick
      nasty_statement_roundtrips;
    Alcotest.test_case "trailing bytes rejected" `Quick trailing_bytes_rejected;
    Alcotest.test_case "reader reassembles dribbled frames" `Quick
      reader_reassembles_dribble;
    Alcotest.test_case "reader reports mid-frame end of stream" `Quick
      reader_reports_truncation;
  ]
