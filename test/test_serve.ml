(* Fault-injection and determinism tests for the [sqlpl serve] daemon.

   The contract under test: no client behavior — mid-frame disconnects,
   dribbled writes, malformed hellos, hostile length prefixes, poisoned
   statements — takes the daemon down or degrades other connections; every
   fault draws a structured wire error (query, span, expected set attached
   where a statement is involved); and what comes over the wire is
   byte-identical to what {!Service.Session.parse_batch} returns in
   process, for both engines, under concurrency. *)

module Wire = Service.Wire
module Server = Service.Server
module Client = Service.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dialect name =
  match Dialects.Dialect.find name with
  | Some d -> d
  | None -> Alcotest.failf "no dialect %s" name

(* A tiny substring check so the suite does not pull in a library for a
   couple of assertions on error messages. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  n = 0 || go 0

(* One warmed cache shared by every server in this suite, so each test is
   not paying for front-end generation again. Only one server runs at a
   time, and each server serializes cache access behind its own lock. *)
let shared_cache = Service.Cache.create ()

let with_server ?workers ?max_frame ?(addr = Wire.Tcp ("127.0.0.1", 0)) f =
  match Server.start ?workers ?max_frame ~cache:shared_cache addr with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok server ->
    Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let connect_exn ?encoding ?engine ~selection server =
  match Client.connect ?encoding ?engine ~selection (Server.address server) with
  | Ok pair -> pair
  | Error e -> Alcotest.failf "connect: %a" Wire.pp_error e

let request_exn ?mode client statements =
  match Client.request ?mode client statements with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "request: %a" Wire.pp_error e

(* The canary: a fresh connection still gets real service. Run after every
   injected fault. *)
let assert_alive server =
  let client, _ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
  (match Client.ping client "still there?" with
  | Ok p -> Alcotest.(check string) "pong echoes" "still there?" p
  | Error e -> Alcotest.failf "ping after fault: %a" Wire.pp_error e);
  let reply = request_exn client [ "SELECT a FROM t" ] in
  check_int "accepted after fault" 1 reply.Wire.stats.Wire.accepted;
  Client.close client

let raw_connect server =
  match Server.address server with
  | Wire.Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd
  | Wire.Unix_socket path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd

let write_all fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let wait_for ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* --- handshake faults -------------------------------------------------- *)

let test_bad_hello () =
  with_server (fun server ->
      (* A well-formed frame that is not a hello. *)
      let fd = raw_connect server in
      write_all fd (Wire.encode (Wire.Ping "knock"));
      let reader = Wire.reader (fun b o l -> Unix.read fd b o l) in
      (match Wire.read_frame reader with
      | Ok (Some (Wire.Error e)) ->
        check_bool "bad_hello" true (e.Wire.code = Wire.Bad_hello)
      | other ->
        Alcotest.failf "expected error frame, got %s"
          (match other with
          | Ok (Some f) -> Fmt.str "%a" Wire.pp_frame f
          | Ok None -> "eof"
          | Error e -> Fmt.str "decode error %a" Wire.pp_error e));
      Unix.close fd;
      (* Bytes that are not a frame at all: unknown tag. *)
      let fd = raw_connect server in
      write_all fd "\000\000\000\002\042X";
      let reader = Wire.reader (fun b o l -> Unix.read fd b o l) in
      (match Wire.read_frame reader with
      | Ok (Some (Wire.Error e)) ->
        check_bool "bad_frame" true (e.Wire.code = Wire.Bad_frame)
      | _ -> Alcotest.fail "expected structured error for garbage hello");
      Unix.close fd;
      assert_alive server)

let test_unknown_dialect_and_digest () =
  with_server (fun server ->
      (match
         Client.connect
           ~selection:(Wire.Dialect "klingon-sql")
           (Server.address server)
       with
      | Ok _ -> Alcotest.fail "unknown dialect accepted"
      | Error e ->
        check_bool "unknown_dialect" true (e.Wire.code = Wire.Unknown_dialect);
        check_bool "names the known dialects" true
          (contains e.Wire.message "minimal"));
      (match
         Client.connect
           ~selection:(Wire.Digest (String.make 32 'f'))
           (Server.address server)
       with
      | Ok _ -> Alcotest.fail "unknown digest accepted"
      | Error e ->
        check_bool "unknown_digest" true (e.Wire.code = Wire.Unknown_digest));
      (* Warming the cache by dialect makes the digest resolvable. *)
      let client, ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
      Client.close client;
      let pinned, ok' =
        connect_exn ~selection:(Wire.Digest ok.Wire.digest) server
      in
      Alcotest.(check string) "digest pins the same front-end" ok.Wire.digest
        ok'.Wire.digest;
      let reply = request_exn pinned [ "SELECT a FROM t" ] in
      check_int "pinned session parses" 1 reply.Wire.stats.Wire.accepted;
      Client.close pinned;
      assert_alive server)

let test_invalid_feature_config () =
  with_server (fun server ->
      match
        Client.connect
          ~selection:(Wire.Features [ "No Such Feature" ])
          (Server.address server)
      with
      | Ok _ -> Alcotest.fail "bogus feature list accepted"
      | Error e ->
        check_bool "invalid_config" true (e.Wire.code = Wire.Invalid_config);
        assert_alive server)

(* --- transport faults --------------------------------------------------- *)

let test_midframe_disconnect () =
  with_server (fun server ->
      let before = (Server.stats server).Server.wire_errors in
      let fd = raw_connect server in
      (* A length prefix promising 100 bytes, then silence. *)
      write_all fd "\000\000\000\100\001abc";
      Unix.close fd;
      check_bool "fault counted as wire error" true
        (wait_for (fun () ->
             (Server.stats server).Server.wire_errors > before));
      assert_alive server)

let test_slow_dribbled_writes () =
  with_server (fun server ->
      let fd = raw_connect server in
      let dribble s =
        String.iter
          (fun c ->
            write_all fd (String.make 1 c);
            Thread.delay 0.001)
          s
      in
      let reader = Wire.reader (fun b o l -> Unix.read fd b o l) in
      dribble
        (Wire.encode
           (Wire.Hello
              {
                Wire.client = "dribbler";
                engine = `Committed;
                selection = Wire.Dialect "minimal";
              }));
      (match Wire.read_frame reader with
      | Ok (Some (Wire.Hello_ok _)) -> ()
      | _ -> Alcotest.fail "dribbled hello not answered");
      dribble
        (Wire.encode
           (Wire.Request
              {
                Wire.id = 1;
                mode = Wire.Cst;
                statements = [ "SELECT a FROM t"; "SELECT a FROM" ];
              }));
      (match Wire.read_frame reader with
      | Ok (Some (Wire.Reply r)) ->
        check_int "dribbled request answered in full" 2
          r.Wire.stats.Wire.statements
      | _ -> Alcotest.fail "dribbled request not answered");
      Unix.close fd;
      assert_alive server)

let test_oversized_payload_rejected () =
  with_server ~max_frame:1024 (fun server ->
      let client, _ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
      (match Client.request client [ String.make 4096 'x' ] with
      | Ok _ -> Alcotest.fail "oversized request accepted"
      | Error e ->
        check_bool "oversized" true (e.Wire.code = Wire.Oversized));
      Client.close client;
      (* A hostile length prefix is refused from the header alone. *)
      let fd = raw_connect server in
      write_all fd "\000\255\255\255";
      let reader = Wire.reader (fun b o l -> Unix.read fd b o l) in
      (match Wire.read_frame reader with
      | Ok (Some (Wire.Error e)) ->
        check_bool "oversized prefix" true (e.Wire.code = Wire.Oversized)
      | _ -> Alcotest.fail "hostile prefix not answered with an error");
      Unix.close fd;
      assert_alive server)

(* --- in-batch faults ---------------------------------------------------- *)

let test_poisoned_statement_isolated () =
  with_server (fun server ->
      let client, _ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
      let poisoned = "SELECT a FROM t GROUP BY a" in
      let reply =
        request_exn client [ "SELECT a FROM t"; poisoned; "SELECT b FROM u" ]
      in
      (match reply.Wire.items with
      | [ Wire.Accepted _; Wire.Rejected e; Wire.Accepted _ ] ->
        check_bool "parse error" true (e.Wire.code = Wire.Parse_error);
        Alcotest.(check (option string))
          "query attached" (Some poisoned) e.Wire.query;
        check_bool "span attached" true (e.Wire.span <> None);
        check_bool "expected set decoded" true (e.Wire.expected <> [])
      | items ->
        Alcotest.failf "unexpected items: %s"
          (String.concat "; "
             (List.map
                (function
                  | Wire.Accepted _ -> "accepted"
                  | Wire.Rejected _ -> "rejected")
                items)));
      check_int "stats count the split" 2 reply.Wire.stats.Wire.accepted;
      check_int "stats count the split" 1 reply.Wire.stats.Wire.rejected;
      (* The connection is not poisoned: the next request is served. *)
      let reply2 = request_exn client [ "SELECT a FROM t" ] in
      check_int "connection survives a rejected batch" 1
        reply2.Wire.stats.Wire.accepted;
      (* A lexical fault carries its span too. *)
      let reply3 = request_exn client [ "SELECT \x01 FROM t" ] in
      (match reply3.Wire.items with
      | [ Wire.Rejected e ] ->
        check_bool "lex error" true (e.Wire.code = Wire.Lex_error);
        check_bool "lex span attached" true (e.Wire.span <> None)
      | _ -> Alcotest.fail "lexical poison not isolated");
      Client.close client;
      assert_alive server)

(* --- modes and encodings ------------------------------------------------ *)

let test_modes_and_json_parity () =
  with_server (fun server ->
      let stmts = [ "SELECT a FROM t"; "SELECT a FROM" ] in
      let binary, _ = connect_exn ~selection:(Wire.Dialect "minimal") server in
      let debug, _ =
        connect_exn ~encoding:Wire.Json
          ~selection:(Wire.Dialect "minimal") server
      in
      let b_cst = request_exn ~mode:Wire.Cst binary stmts in
      let j_cst = request_exn ~mode:Wire.Cst debug stmts in
      Alcotest.(check string)
        "JSON debug mode returns the same items"
        (Wire.encode_items b_cst.Wire.items)
        (Wire.encode_items j_cst.Wire.items);
      (match b_cst.Wire.items with
      | Wire.Accepted { cst = Some _; _ } :: _ -> ()
      | _ -> Alcotest.fail "cst mode must render the tree");
      let b_rec = request_exn ~mode:Wire.Recognize binary stmts in
      (match b_rec.Wire.items with
      | Wire.Accepted { cst = None; tokens } :: _ ->
        check_bool "recognize still counts tokens" true (tokens > 0)
      | _ -> Alcotest.fail "recognize mode must omit the tree");
      Client.close binary;
      Client.close debug)

(* --- concurrency determinism ------------------------------------------- *)

let rotate n l =
  let len = List.length l in
  if len = 0 then l
  else
    let n = n mod len in
    let rec split i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> split (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split n [] l

let determinism_workload =
  [
    "SELECT a FROM t";
    "SELECT DISTINCT a FROM t";
    "SELECT a FROM t WHERE a = b";
    "SELECT a FROM t GROUP BY a";
    "SELECT a FROM";
    "DROP TABLE t";
    "SELECT \x01 FROM t";
    "";
  ]

let test_concurrent_clients_deterministic () =
  List.iter
    (fun engine ->
      with_server ~workers:8 (fun server ->
          (* The in-process reference: one sequential parse per batch,
             rendered through the exact mapping the server uses. *)
          let session =
            match
              Service.Session.of_cache ~label:"minimal" ~engine
                (Service.Cache.create ())
                (dialect "minimal").Dialects.Dialect.config
            with
            | Ok s -> s
            | Error e -> Alcotest.failf "reference session: %a" Core.pp_error e
          in
          let batches =
            List.init 8 (fun i -> rotate i determinism_workload)
          in
          let expected =
            List.map
              (fun stmts ->
                let batch = Service.Session.parse_batch session stmts in
                Wire.encode_items
                  (List.map
                     (Server.outcome_of_item Wire.Cst)
                     batch.Service.Session.items))
              batches
          in
          let failures = Array.make (List.length batches) None in
          let run i stmts want =
            match
              Client.connect ~engine
                ~selection:(Wire.Dialect "minimal")
                (Server.address server)
            with
            | Error e ->
              failures.(i) <- Some (Fmt.str "connect: %a" Wire.pp_error e)
            | Ok (client, _) ->
              (* Several requests per connection, so replies interleave
                 across the worker pool while each connection also checks
                 its own request/reply ordering. *)
              for _round = 1 to 3 do
                match Client.request client stmts with
                | Error e ->
                  failures.(i) <- Some (Fmt.str "request: %a" Wire.pp_error e)
                | Ok reply ->
                  if not (String.equal (Wire.encode_items reply.Wire.items) want)
                  then failures.(i) <- Some "items differ from library results"
              done;
              Client.close client
          in
          let threads =
            List.mapi
              (fun i (stmts, want) -> Thread.create (fun () -> run i stmts want) ())
              (List.combine batches expected)
          in
          List.iter Thread.join threads;
          Array.iteri
            (fun i failure ->
              match failure with
              | Some msg -> Alcotest.failf "client %d: %s" i msg
              | None -> ())
            failures;
          let s = Server.stats server in
          check_bool "8 concurrent connections accepted" true
            (s.Server.connections >= 8);
          check_int "every request answered" (8 * 3) s.Server.requests))
    [ `Committed; `Vm ]

(* --- lifecycle ---------------------------------------------------------- *)

let test_unix_socket_lifecycle () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sqlpl-serve-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  with_server ~addr:(Wire.Unix_socket path) (fun server ->
      check_bool "socket file exists while serving" true (Sys.file_exists path);
      let client, _ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
      let reply = request_exn client [ "SELECT a FROM t" ] in
      check_int "served over the unix socket" 1 reply.Wire.stats.Wire.accepted;
      Client.close client;
      (* Binding the same path while the socket file exists fails cleanly. *)
      match Server.start ~cache:shared_cache (Wire.Unix_socket path) with
      | Ok second ->
        Server.stop second;
        Alcotest.fail "second bind on a live unix socket must fail"
      | Error msg ->
        check_bool "error names the address" true (contains msg path));
  check_bool "socket path unlinked on stop" false (Sys.file_exists path)

let test_port_in_use_reported () =
  with_server (fun server ->
      match Server.start ~cache:shared_cache (Server.address server) with
      | Ok second ->
        Server.stop second;
        Alcotest.fail "second bind on a live port must fail"
      | Error msg ->
        check_bool "clean error, not an exception" true (String.length msg > 0);
        assert_alive server)

let test_stop_is_idempotent () =
  match Server.start ~cache:shared_cache (Wire.Tcp ("127.0.0.1", 0)) with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok server ->
    let client, _ok = connect_exn ~selection:(Wire.Dialect "minimal") server in
    Server.stop server;
    Server.stop server;
    (* The interrupted client sees a structured error, not a hang. *)
    (match Client.request client [ "SELECT a FROM t" ] with
    | Ok _ -> Alcotest.fail "request served after stop"
    | Error e ->
      check_bool "structured failure after stop" true
        (e.Wire.code = Wire.Io || e.Wire.code = Wire.Bad_frame));
    Client.close client;
    match Client.connect ~selection:(Wire.Dialect "minimal")
            (Server.address server)
    with
    | Ok _ -> Alcotest.fail "connect succeeded after stop"
    | Error e -> check_bool "connect refused" true (e.Wire.code = Wire.Io)

let suite =
  [
    Alcotest.test_case "malformed hello draws a structured error" `Quick
      test_bad_hello;
    Alcotest.test_case "unknown dialect and digest are rejected; digest \
                        pinning works after warm-up" `Quick
      test_unknown_dialect_and_digest;
    Alcotest.test_case "invalid feature config is rejected" `Quick
      test_invalid_feature_config;
    Alcotest.test_case "mid-frame disconnect leaves the daemon serving" `Quick
      test_midframe_disconnect;
    Alcotest.test_case "byte-at-a-time writes are reassembled" `Quick
      test_slow_dribbled_writes;
    Alcotest.test_case "oversized payloads are rejected without allocation"
      `Quick test_oversized_payload_rejected;
    Alcotest.test_case "poisoned statement poisons only its item" `Quick
      test_poisoned_statement_isolated;
    Alcotest.test_case "cst/recognize modes and JSON parity" `Quick
      test_modes_and_json_parity;
    Alcotest.test_case "concurrent clients match the library byte-for-byte"
      `Quick test_concurrent_clients_deterministic;
    Alcotest.test_case "unix socket lifecycle and cleanup" `Quick
      test_unix_socket_lifecycle;
    Alcotest.test_case "port in use is a clean startup error" `Quick
      test_port_in_use_reported;
    Alcotest.test_case "stop is idempotent and interrupts clients" `Quick
      test_stop_is_idempotent;
  ]
