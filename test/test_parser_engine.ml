(* Tests for the parser generator/engine on toy grammars: prediction,
   backtracking, repetition, error reporting, and the CST. *)

open Grammar.Builder
module Engine = Parser_gen.Engine
module Cst = Parser_gen.Cst

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen g =
  match Engine.generate g with
  | Ok p -> p
  | Error e -> Alcotest.failf "generate: %a" Engine.pp_gen_error e

let parse p input =
  Engine.parse p (Def_tokens.tokens input)

let parse_ok p input =
  match parse p input with
  | Ok tree -> tree
  | Error e -> Alcotest.failf "parse %S: %a" input Engine.pp_parse_error e

let accepts p input = Result.is_ok (parse p input)

(* Arithmetic grammar with repetition and grouping. *)
let arith =
  gen
    (grammar ~start:"expr"
       [
         rule "expr" [ [ nt "term"; star [ t "PLUS"; nt "term" ] ] ];
         rule "term" [ [ nt "factor"; star [ t "TIMES"; nt "factor" ] ] ];
         rule "factor"
           [ [ t "UNSIGNED_INTEGER" ]; [ t "LPAREN"; nt "expr"; t "RPAREN" ] ];
       ])

let test_arith_accepts () =
  List.iter
    (fun s -> check_bool s true (accepts arith s))
    [ "1"; "1 + 2"; "1 + 2 * 3"; "(1 + 2) * 3"; "((((5))))"; "1+2+3+4+5" ]

let test_arith_rejects () =
  List.iter
    (fun s -> check_bool s false (accepts arith s))
    [ ""; "+"; "1 +"; "(1"; "1)"; "1 2"; "1 + * 2" ]

let test_cst_shape () =
  let tree = parse_ok arith "1 + 2" in
  Alcotest.(check string) "root" "expr" (Cst.label tree);
  check_int "two terms" 2 (List.length (Cst.children_labelled tree "term"));
  match Cst.first_token tree with
  | Some tok -> Alcotest.(check string) "first token text" "1" tok.Lexing_gen.Token.text
  | None -> Alcotest.fail "token expected"

let test_cst_navigation () =
  let tree = parse_ok arith "(1 + 2) * 3" in
  check_bool "descendant finds nested expr" true
    (Cst.descendant tree "PLUS" <> None);
  check_int "all tokens" 7 (List.length (Cst.tokens tree));
  check_bool "node_count counts leaves and nodes" true (Cst.node_count tree > 7)

(* Backtracking: alternatives sharing a long prefix. *)
let backtracking =
  gen
    (grammar ~start:"s"
       [
         rule "s"
           [
             [ t "IDENT"; t "PERIOD"; t "IDENT" ];
             [ t "IDENT"; t "PERIOD"; t "TIMES" ];
             [ t "IDENT" ];
           ];
       ])

let test_backtracking_prefix () =
  check_bool "first alternative" true (accepts backtracking "a.b");
  check_bool "second alternative" true (accepts backtracking "a.*");
  check_bool "third alternative" true (accepts backtracking "a");
  check_bool "reject" false (accepts backtracking "a.")

(* Backtracking out of a greedy optional: [IDENT] IDENT. *)
let greedy_opt =
  gen (grammar ~start:"s" [ rule "s" [ [ opt [ t "IDENT" ]; t "IDENT" ] ] ])

let test_backtrack_into_optional () =
  check_bool "one ident: optional must yield" true (accepts greedy_opt "a");
  check_bool "two idents" true (accepts greedy_opt "a b");
  check_bool "three rejected" false (accepts greedy_opt "a b c")

(* Backtracking out of a greedy star: (IDENT)* IDENT. *)
let greedy_star =
  gen (grammar ~start:"s" [ rule "s" [ [ star [ t "IDENT" ]; t "IDENT" ] ] ])

let test_backtrack_into_star () =
  check_bool "single" true (accepts greedy_star "a");
  check_bool "many" true (accepts greedy_star "a b c d");
  check_bool "empty rejected" false (accepts greedy_star "")

let test_plus_requires_one () =
  let p = gen (grammar ~start:"s" [ rule "s" [ [ plus [ t "IDENT" ] ] ] ]) in
  check_bool "empty rejected" false (accepts p "");
  check_bool "one" true (accepts p "a");
  check_bool "many" true (accepts p "a b c")

let test_inline_group () =
  let p =
    gen
      (grammar ~start:"s"
         [ rule "s" [ [ grp [ [ t "SELECT" ]; [ t "FROM" ] ]; t "IDENT" ] ] ])
  in
  check_bool "first branch" true (accepts p "SELECT a");
  check_bool "second branch" true (accepts p "FROM a");
  check_bool "no branch" false (accepts p "a a")

let test_nullable_star_no_loop () =
  (* A star of a nullable body must not loop forever. *)
  let p =
    gen (grammar ~start:"s" [ rule "s" [ [ star [ opt [ t "IDENT" ] ]; t "PLUS" ] ] ])
  in
  check_bool "terminates and accepts" true (accepts p "a +");
  check_bool "terminates on empty" true (accepts p "+")

let test_error_position_and_expected () =
  match parse arith "1 + + 2" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
    check_int "column of second plus" 5 e.Engine.pos.Lexing_gen.Token.column;
    check_bool "expected includes integer" true
      (List.mem "UNSIGNED_INTEGER" e.Engine.expected);
    check_bool "expected includes lparen" true (List.mem "LPAREN" e.Engine.expected)

let test_error_at_eof () =
  match parse arith "1 +" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e -> Alcotest.(check string) "found EOF" "EOF" e.Engine.found

let test_error_past_last_token () =
  (* A failure past the last token of a hand-built stream (no EOF
     sentinel) reports the position just past that token's span — not the
     token's own start, which the engine historically (and the reference
     engine still) clamps to. On scanner streams the two agree because the
     sentinel itself sits past the last real token. *)
  let p =
    gen
      (grammar ~start:"s"
         [ rule "s" [ [ t "SELECT"; t "IDENT" ] ] ])
  in
  let tok =
    {
      Lexing_gen.Token.kind = "SELECT";
      kind_id = Lexing_gen.Token.no_id;
      text = "SELECT";
      pos = { Lexing_gen.Token.line = 1; column = 1; offset = 0 };
    }
  in
  match Engine.parse p [ tok ] with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
    Alcotest.(check string) "found EOF" "EOF" e.Engine.found;
    check_int "column past SELECT" 7 e.Engine.pos.Lexing_gen.Token.column;
    check_int "offset past SELECT" 6 e.Engine.pos.Lexing_gen.Token.offset;
    check_bool "expected IDENT" true (List.mem "IDENT" e.Engine.expected)

let test_trailing_input_rejected () =
  match parse arith "1 2" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e -> check_bool "expected EOF or operator" true (e.Engine.expected <> [])

let test_generate_rejects_left_recursion () =
  let g = grammar ~start:"e" [ rule "e" [ [ nt "e"; t "PLUS" ]; [ t "IDENT" ] ] ] in
  match Engine.generate g with
  | Error (Engine.Left_recursion [ "e" ]) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Engine.pp_gen_error e
  | Ok _ -> Alcotest.fail "left recursion must be rejected"

let test_generate_rejects_undefined () =
  let g = grammar ~start:"s" [ rule "s" [ [ nt "ghost" ] ] ] in
  match Engine.generate g with
  | Error (Engine.Grammar_problems _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Engine.pp_gen_error e
  | Ok _ -> Alcotest.fail "undefined nonterminal must be rejected"

let test_generate_tolerates_unreachable () =
  let g =
    grammar ~start:"s" [ rule "s" [ [ t "IDENT" ] ]; rule "helper" [ [ t "PLUS" ] ] ]
  in
  check_bool "unreachable helper tolerated" true (Result.is_ok (Engine.generate g))

let test_start_override () =
  let p =
    gen
      (grammar ~start:"s"
         [ rule "s" [ [ t "SELECT"; nt "name" ] ]; rule "name" [ [ t "IDENT" ] ] ])
  in
  check_bool "parse from sub-rule" true
    (Result.is_ok (Engine.parse ~start:"name" p (Def_tokens.tokens "a")));
  check_bool "sub-rule rejects full input" false
    (Result.is_ok (Engine.parse ~start:"name" p (Def_tokens.tokens "SELECT a")))

let test_accessors () =
  Alcotest.(check string) "start symbol" "expr" (Engine.start_symbol arith);
  check_int "grammar rules" 3 (Grammar.Cfg.rule_count (Engine.grammar arith))

(* Deep nesting exercises the engine's recursion. *)
let test_deep_nesting () =
  let depth = 200 in
  let input = String.concat "" (List.init depth (fun _ -> "(")) ^ "1"
              ^ String.concat "" (List.init depth (fun _ -> ")")) in
  check_bool "deeply nested parens" true (accepts arith input)

let test_long_repetition () =
  let input = String.concat " + " (List.init 2000 (fun i -> string_of_int i)) in
  check_bool "2000-term sum" true (accepts arith input)

let suite =
  [
    Alcotest.test_case "arith accepts" `Quick test_arith_accepts;
    Alcotest.test_case "arith rejects" `Quick test_arith_rejects;
    Alcotest.test_case "cst shape" `Quick test_cst_shape;
    Alcotest.test_case "cst navigation" `Quick test_cst_navigation;
    Alcotest.test_case "backtracking shared prefix" `Quick test_backtracking_prefix;
    Alcotest.test_case "backtrack into optional" `Quick test_backtrack_into_optional;
    Alcotest.test_case "backtrack into star" `Quick test_backtrack_into_star;
    Alcotest.test_case "plus requires one" `Quick test_plus_requires_one;
    Alcotest.test_case "inline group" `Quick test_inline_group;
    Alcotest.test_case "nullable star terminates" `Quick test_nullable_star_no_loop;
    Alcotest.test_case "error position and expected set" `Quick
      test_error_position_and_expected;
    Alcotest.test_case "error at EOF" `Quick test_error_at_eof;
    Alcotest.test_case "error past last token" `Quick
      test_error_past_last_token;
    Alcotest.test_case "trailing input rejected" `Quick test_trailing_input_rejected;
    Alcotest.test_case "reject left recursion" `Quick test_generate_rejects_left_recursion;
    Alcotest.test_case "reject undefined nonterminal" `Quick test_generate_rejects_undefined;
    Alcotest.test_case "tolerate unreachable helper" `Quick
      test_generate_tolerates_unreachable;
    Alcotest.test_case "start override" `Quick test_start_override;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    Alcotest.test_case "long repetition" `Quick test_long_repetition;
  ]
