(* Shared SQL corpora: statements grouped by the features they exercise.
   Used by the integration tests (accept/reject matrices) and the benches. *)

let minimal_accept =
  [
    "SELECT a FROM t";
    "SELECT DISTINCT a FROM t";
    "SELECT ALL a FROM t";
    "SELECT a FROM t WHERE a = b";
    "SELECT DISTINCT a FROM t WHERE x = y";
  ]

(* Statements outside the §3.2 worked example's language. *)
let minimal_reject =
  [
    "SELECT a, b FROM t";
    "SELECT * FROM t";
    "SELECT a FROM t, u";
    "SELECT a FROM t WHERE a < b";
    "SELECT a FROM t WHERE a = 1";
    "SELECT a FROM t ORDER BY a";
    "SELECT COUNT(a) FROM t";
    "INSERT INTO t (a) VALUES (1)";
    "SELECT a AS x FROM t";
  ]

let scql_accept =
  [
    "CREATE TABLE purse (id INTEGER NOT NULL, balance INTEGER, holder VARCHAR(30))";
    "INSERT INTO purse (id, balance, holder) VALUES (1, 500, 'alice')";
    "SELECT balance FROM purse WHERE id = 1";
    "SELECT id, balance FROM purse WHERE balance >= 100 AND holder = 'alice'";
    "UPDATE purse SET balance = 400 WHERE id = 1";
    "DELETE FROM purse WHERE id = 1";
    "GRANT SELECT, UPDATE ON TABLE purse TO PUBLIC";
    "REVOKE UPDATE ON TABLE purse FROM PUBLIC";
    "DROP TABLE purse";
    "SELECT * FROM purse";
  ]

let scql_reject =
  [
    "SELECT COUNT(balance) FROM purse";
    "SELECT a FROM t ORDER BY a";
    "SELECT a FROM t, u";
    "SELECT a FROM t INNER JOIN u ON t.x = u.x";
    "SELECT a FROM t GROUP BY a";
    "CREATE VIEW v AS SELECT a FROM t";
    "COMMIT";
    "SELECT a FROM t WHERE a IN (1, 2)";
  ]

let tinysql_accept =
  [
    "SELECT nodeid, light FROM sensors";
    "SELECT nodeid, light FROM sensors EPOCH DURATION 1024";
    "SELECT AVG(temp) FROM sensors WHERE nodeid = 3 SAMPLE PERIOD 2048";
    "SELECT nodeid, AVG(light), MAX(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024 SAMPLE PERIOD 10";
    "SELECT COUNT(*) FROM sensors WHERE temp > 25 AND light > 100";
    "SELECT nodeid FROM sensors GROUP BY nodeid HAVING AVG(temp) > 30";
  ]

let tinysql_reject =
  [
    "SELECT nodeid AS n FROM sensors";       (* no column aliases in TinySQL *)
    "SELECT a FROM t, u";                    (* single table only *)
    "SELECT a FROM t INNER JOIN u ON t.x = u.x";
    "SELECT a FROM t ORDER BY a";
    "SELECT a FROM (SELECT b FROM u) AS d";
    "INSERT INTO sensors (nodeid) VALUES (1)";
    "CREATE TABLE t (a INTEGER)";
  ]

let embedded_accept =
  [
    "CREATE TABLE items (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL, price DECIMAL(8, 2) DEFAULT 0, stocked BOOLEAN)";
    "INSERT INTO items (id, name, price, stocked) VALUES (1, 'bolt', 0.25, TRUE), (2, 'nut', 0.1, TRUE)";
    "SELECT name, price FROM items WHERE stocked = TRUE ORDER BY price DESC LIMIT 10";
    "UPDATE items SET price = price * 2 WHERE id = 2";
    "DELETE FROM items WHERE stocked = FALSE";
    "SELECT id, name AS label FROM items WHERE price <= 1 AND id <> 7";
    "DROP TABLE items";
  ]

let embedded_reject =
  [
    "SELECT a FROM t INNER JOIN u ON t.x = u.x";
    "SELECT COUNT(*) FROM items";
    "SELECT a FROM t UNION SELECT b FROM u";
    "SELECT a FROM t FETCH FIRST 3 ROWS ONLY";  (* embedded uses LIMIT *)
    "GRANT SELECT ON TABLE items TO alice";
    "SELECT CASE WHEN a = 1 THEN 2 ELSE 3 END FROM t";
    "SELECT nodeid FROM sensors EPOCH DURATION 10";
  ]

let analytics_accept =
  [
    "SELECT r.region, SUM(s.amount) AS total FROM sales AS s INNER JOIN regions AS r ON s.region_id = r.id WHERE s.yr = 2007 GROUP BY r.region HAVING SUM(s.amount) > 1000 ORDER BY total DESC FETCH FIRST 10 ROWS ONLY";
    "SELECT region, yr, SUM(amount) FROM sales GROUP BY ROLLUP (region, yr)";
    "SELECT a FROM t WHERE a > ALL (SELECT b FROM u WHERE u.k = t.k)";
    "SELECT CASE WHEN amount > 100 THEN 'big' ELSE 'small' END, CAST(amount AS INTEGER) FROM sales";
    "SELECT x FROM t UNION ALL SELECT y FROM u INTERSECT SELECT z FROM v";
    "SELECT UPPER(name), SUBSTRING(name FROM 1 FOR 3), CHAR_LENGTH(name) FROM customers";
    "SELECT t.*, u.k FROM t CROSS JOIN u";
    "SELECT a FROM (SELECT b AS a FROM u WHERE b IS NOT NULL) AS d";
    "SELECT COUNT(DISTINCT region) FROM sales";
    "CREATE VIEW top_sales AS SELECT region, SUM(amount) FROM sales GROUP BY region";
    "SELECT a FROM t LEFT OUTER JOIN u USING (k) WHERE u.v IS NULL";
    "WITH top (region, total) AS (SELECT region, SUM(amount) FROM sales GROUP BY region) SELECT region FROM top WHERE total > 100";
    "WITH RECURSIVE chain (id) AS (SELECT id FROM emp WHERE boss IS NULL UNION SELECT e.id FROM emp AS e INNER JOIN chain ON e.boss = chain.id) SELECT id FROM chain";
  ]

let analytics_reject =
  [
    "GRANT SELECT ON TABLE sales TO alice";
    "COMMIT";
    "SELECT nodeid FROM sensors EPOCH DURATION 10";
    "SELECT a FROM t LIMIT 3";                     (* analytics uses FETCH FIRST *)
    "UPDATE t SET a = 1";                          (* no UPDATE in analytics *)
    "MERGE INTO t USING u ON t.a = u.a WHEN MATCHED THEN UPDATE SET a = 1";
  ]

(* Statements every full-dialect component must parse (superset sanity). *)
let full_accept =
  minimal_accept @ scql_accept @ tinysql_accept @ embedded_accept
  @ analytics_accept
  @ [
      "MERGE INTO inventory AS i USING arrivals ON i.sku = arrivals.sku WHEN MATCHED THEN UPDATE SET qty = i.qty + arrivals.qty WHEN NOT MATCHED THEN INSERT (sku, qty) VALUES (arrivals.sku, arrivals.qty)";
      "START TRANSACTION ISOLATION LEVEL SERIALIZABLE";
      "SAVEPOINT before_update";
      "ROLLBACK TO SAVEPOINT before_update";
      "RELEASE SAVEPOINT before_update";
      "COMMIT WORK";
      "ALTER TABLE t ADD COLUMN note VARCHAR(100)";
      "ALTER TABLE t ALTER COLUMN note SET DEFAULT 'n/a'";
      "ALTER TABLE t DROP COLUMN note CASCADE";
      "CREATE SCHEMA retail";
      "SET SCHEMA retail";
      "DROP SCHEMA retail RESTRICT";
      "SELECT EXTRACT(YEAR FROM d), POSITION('a' IN name), TRIM(BOTH 'x' FROM name) FROM t";
      "SELECT CURRENT_DATE, CURRENT_USER FROM t";
      "SELECT COALESCE(a, b, 0), NULLIF(a, b) FROM t";
      "SELECT a FROM t WHERE x SIMILAR TO 'a%'";
      "SELECT a FROM t WHERE d1 OVERLAPS d2";
      "VALUES (1, 'one'), (2, 'two')";
      "SELECT \"Mixed Case Column\" FROM \"Weird Table\"";
      "SELECT name, RANK() OVER (PARTITION BY region ORDER BY amount) FROM sales";
      "SELECT ROW_NUMBER() OVER () FROM t";
      "SELECT a, DENSE_RANK() OVER (ORDER BY a) FROM t WINDOW w AS (PARTITION BY a)";
      "CREATE SEQUENCE order_ids START WITH 100 INCREMENT BY 5";
      "SELECT NEXT VALUE FOR order_ids FROM t";
      "DROP SEQUENCE order_ids";
      "SELECT CAST(d AS INTERVAL DAY TO HOUR), INTERVAL '5' DAY FROM t";
      "SELECT OVERLAY(name PLACING 'xx' FROM 2 FOR 3), OCTET_LENGTH(name) FROM t";
      "SELECT a FROM t WHERE a BETWEEN SYMMETRIC 10 AND 1";
      "SELECT a FROM t ORDER BY a ASC FOR UPDATE OF a, b";
      "SELECT a FROM t FOR READ ONLY";
      "SET SESSION AUTHORIZATION alice";
      "RESET SESSION AUTHORIZATION";
      "SELECT a, b FROM t UNION CORRESPONDING SELECT b, c FROM u";
      "SELECT a FROM t INTERSECT ALL CORRESPONDING SELECT a FROM u";
      "SELECT a FROM t WHERE a = ? AND b > ?";
      "EXPLAIN SELECT a FROM t WHERE a = 1";
    ]

(* Statements exercising features the dialect did NOT select — the rejection
   half of the paper's "exactly the selected subset" claim. Unlike the
   [*_reject] lists above these are constrained to fail in the *parser* (with
   a non-empty expected set), never the scanner: every word lexes as an
   identifier when its keyword feature is unselected, and only punctuation
   and literal classes the dialect's token set declares are used. *)
let unselected_minimal =
  [
    "SELECT a FROM t GROUP BY a";          (* no grouping *)
    "SELECT a FROM t ORDER BY a";          (* no ordering *)
    "SELECT a FROM t EPOCH DURATION x";    (* acquisitional clauses are TinySQL's *)
    "SELECT a FROM t LIMIT b";             (* no fetch/limit *)
    "COMMIT";                              (* no transactions *)
  ]

let unselected_scql =
  [
    "SELECT balance FROM purse GROUP BY balance";   (* no aggregation/grouping *)
    "SELECT balance FROM purse ORDER BY balance";   (* no ordering *)
    "SELECT balance FROM purse EPOCH DURATION 10";  (* no acquisitional clauses *)
    "SELECT a FROM t INNER JOIN u";                 (* single-table only *)
    "COMMIT";                                       (* no transactions *)
  ]

let unselected_tinysql =
  [
    "SELECT nodeid AS n FROM sensors";        (* no column aliases *)
    "SELECT nodeid FROM sensors ORDER BY nodeid";  (* no ordering *)
    "SELECT a FROM t INNER JOIN u";           (* single-table only *)
    "INSERT INTO sensors VALUES ( 1 )";       (* read-only dialect *)
    "GRANT SELECT ON TABLE sensors TO alice"; (* no access control *)
  ]

let unselected_embedded =
  [
    "SELECT nodeid FROM sensors EPOCH DURATION 10";  (* no acquisitional clauses *)
    "SELECT a FROM t UNION SELECT b FROM u";         (* no set operations *)
    "SELECT COUNT ( a ) FROM t";                     (* no aggregation *)
    "SELECT a FROM t INNER JOIN u";                  (* no joins *)
    "GRANT SELECT ON TABLE items TO alice";          (* no access control *)
  ]

let unselected_analytics =
  [
    "UPDATE t SET a = 1";                            (* no UPDATE *)
    "SELECT a FROM t LIMIT 3";                       (* analytics uses FETCH FIRST *)
    "SELECT nodeid FROM sensors EPOCH DURATION 10";  (* no acquisitional clauses *)
    "GRANT SELECT ON TABLE sales TO alice";          (* no access control *)
    "COMMIT";                                        (* no transactions *)
  ]

(* [(dialect, statements)]; the full dialect selects everything, so it has no
   unselected features to exercise. *)
let unselected =
  [
    ("minimal", unselected_minimal);
    ("scql", unselected_scql);
    ("tinysql", unselected_tinysql);
    ("embedded", unselected_embedded);
    ("analytics", unselected_analytics);
  ]

(* Statements no dialect accepts (lexically or syntactically invalid). *)
let always_reject =
  [
    "";
    "SELECT";
    "SELECT FROM t";
    "SELECT a FROM";
    "FROM t SELECT a";
    "SELECT a FROM t WHERE";
    "SELECT a a a FROM t";
    "SELEC a FROM t";
  ]
