(* Generative conformance suite — the paper's "exactly the selected subset"
   claim, positive half.

   For every shipped dialect, sentences are sampled from the dialect's own
   composed grammar (Grammar.Sampler over the EBNF, deterministic seeds) and
   rendered back to SQL text through the dialect's composed token set. Any
   such sentence is in the tailored language by construction, so it must be
   accepted end-to-end (scanner + generated parser) by the dialect itself
   AND by the full SQL:2003 parser: a tailored grammar composes a subset of
   the full grammar's fragments, so its language is contained in the full
   language (subset containment). A dialect-accepted sentence the full
   parser rejects — or vice versa a sampled sentence the dialect rejects —
   is a composition or generation bug. *)

let check_bool = Alcotest.(check bool)

let sentences_per_dialect = 120

let generated =
  lazy
    (List.map
       (fun (d : Dialects.Dialect.t) ->
         match Core.generate_dialect d with
         | Ok g -> (d.Dialects.Dialect.name, g)
         | Error e ->
           Alcotest.failf "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
       Dialects.Dialect.all)

let parser_of name = List.assoc name (Lazy.force generated)

(* One deterministic seed per dialect so failures reproduce exactly. *)
let seed_of name = 7919 + Hashtbl.hash name mod 1000

let sample name =
  Service.Sentences.sample ~count:sentences_per_dialect ~seed:(seed_of name)
    (parser_of name)

let test_own_dialect_accepts name () =
  let g = parser_of name in
  List.iter
    (fun sql ->
      check_bool
        (Printf.sprintf "%s accepts its own sampled sentence: %s" name sql)
        true (Core.accepts g sql))
    (sample name)

let test_subset_containment name () =
  let full = parser_of "full" in
  List.iter
    (fun sql ->
      check_bool
        (Printf.sprintf "full accepts %s-sampled sentence: %s" name sql)
        true (Core.accepts full sql))
    (sample name)

let test_sample_is_deterministic () =
  Alcotest.(check (list string))
    "same seed, same sentences" (sample "tinysql") (sample "tinysql")

let test_sample_count_and_spread () =
  List.iter
    (fun (name, _) ->
      let sentences = sample name in
      Alcotest.(check int)
        (name ^ " sample size") sentences_per_dialect (List.length sentences);
      let distinct = List.length (List.sort_uniq compare sentences) in
      (* Variety scales with the language: the minimal dialect's whole
         language (modulo the fixed lexeme representatives) has only six
         rendered shapes, while the larger dialects must produce a genuinely
         spread corpus rather than one sentence repeated. *)
      let floor =
        if name = "minimal" then 4 else sentences_per_dialect / 4
      in
      check_bool
        (Printf.sprintf "%s sample is varied (%d distinct, floor %d)" name
           distinct floor)
        true (distinct >= floor))
    (Lazy.force generated)

let test_sampler_stays_in_grammar_terminals () =
  (* Every sampled terminal name must come from the dialect's own grammar —
     a sanity check that rendering never invents tokens. *)
  List.iter
    (fun (name, (g : Core.generated)) ->
      let terminals = Grammar.Cfg.terminals g.Core.grammar in
      let sentences =
        Grammar.Sampler.sentences ~seed:(seed_of name) ~count:20 g.Core.grammar
      in
      List.iter
        (List.iter (fun t ->
             check_bool
               (Printf.sprintf "%s: %s is a grammar terminal" name t)
               true (List.mem t terminals)))
        sentences)
    (Lazy.force generated)

let conformance_cases =
  List.concat_map
    (fun (d : Dialects.Dialect.t) ->
      let name = d.Dialects.Dialect.name in
      [
        Alcotest.test_case
          (Printf.sprintf "%s: %d sampled sentences accepted" name
             sentences_per_dialect)
          `Quick
          (test_own_dialect_accepts name);
        Alcotest.test_case
          (Printf.sprintf "%s: sampled sentences within full SQL:2003" name)
          `Quick
          (test_subset_containment name);
      ])
    Dialects.Dialect.all

let suite =
  conformance_cases
  @ [
      Alcotest.test_case "sampling is deterministic" `Quick
        test_sample_is_deterministic;
      Alcotest.test_case "sample size and spread" `Quick
        test_sample_count_and_spread;
      Alcotest.test_case "sampled terminals come from the grammar" `Quick
        test_sampler_stays_in_grammar_terminals;
    ]
