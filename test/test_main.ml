let () =
  Alcotest.run "sqlpl"
    [
      ("grammar", Test_grammar.suite);
      ("analysis", Test_analysis.suite);
      ("feature", Test_feature.suite);
      ("compose", Test_compose.suite);
      ("scanner", Test_scanner.suite);
      ("parser-engine", Test_parser_engine.suite);
      ("sql-model", Test_sql_model.suite);
      ("dialects", Test_dialects.suite);
      ("lowering", Test_lower.suite);
      ("engine", Test_engine.suite);
      ("executor", Test_executor.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("codegen", Test_codegen.suite);
      ("report", Test_report.suite);
      ("lint", Test_lint.suite);
      ("service", Test_service.suite);
      ("wire", Test_wire.suite);
      ("serve", Test_serve.suite);
      ("stream", Test_stream.suite);
      ("conformance", Test_conformance.suite);
      ("differential", Test_differential.suite);
      ("alloc", Test_alloc.suite);
      ("negative", Test_negative.suite);
      ("properties", Test_properties.suite);
      ("printer", Test_printer.suite);
      ("cli", Test_cli.suite);
      ("family", Test_family.suite);
    ]
