(* A shared token set for scanner and parser-engine tests. *)

open Lexing_gen

let basic_set : Spec.set =
  [
    ("SELECT", Spec.Keyword "SELECT");
    ("FROM", Spec.Keyword "FROM");
    ("IDENT", Spec.Class Spec.Identifier);
    ("QUOTED_IDENT", Spec.Class Spec.Quoted_identifier);
    ("UNSIGNED_INTEGER", Spec.Class Spec.Unsigned_integer);
    ("DECIMAL_LITERAL", Spec.Class Spec.Decimal_number);
    ("STRING_LITERAL", Spec.Class Spec.String_literal);
    ("LPAREN", Spec.Punct "(");
    ("RPAREN", Spec.Punct ")");
    ("COMMA", Spec.Punct ",");
    ("PERIOD", Spec.Punct ".");
    ("PLUS", Spec.Punct "+");
    ("TIMES", Spec.Punct "*");
    ("EQUALS", Spec.Punct "=");
    ("LESS_EQ", Spec.Punct "<=");
    ("LESS", Spec.Punct "<");
    ("CONCAT", Spec.Punct "||");
  ]

let scanner = Scanner.create basic_set

let tokens input =
  match Scanner.scan_tokens scanner input with
  | Ok tokens -> Array.to_list tokens
  | Error e -> Alcotest.failf "lex error: %a" Scanner.pp_error e
