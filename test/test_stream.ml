(* Streaming differential and memory-ceiling tests.

   The contract: chunked streaming is invisible. [Core.fold_statements]
   over any chunk size yields exactly the statement list
   [Core.split_statements] produces on the concatenated input — chunk
   boundaries may fall inside tokens, inside quoted strings holding [;],
   anywhere — and [Session.parse_stream] on the fused engine yields items
   whose rendered CSTs and errors are byte-identical to a whole-buffer
   [Session.parse_batch]. On top, the memory ceiling: streaming a script
   many times larger must not grow the major heap's high-water mark, and
   the server's raw streaming mode must put the same bytes on the wire
   that {!Service.Server.stream_line_of_item} renders in process, even
   when the client dribbles the stream one byte at a time. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let front_end name =
  match
    Core.generate_dialect
      (List.find
         (fun (d : Dialects.Dialect.t) -> d.Dialects.Dialect.name = name)
         Dialects.Dialect.all)
  with
  | Ok g -> g
  | Error e -> Alcotest.failf "generate %s: %a" name Core.pp_error e

(* A [read] over an in-memory string, returning at most [cap] bytes per
   call so the fold's own chunking is exercised against short reads too. *)
let reader_of_string ?(cap = max_int) s =
  let pos = ref 0 in
  fun buf off len ->
    let len = min (min len cap) (String.length s - !pos) in
    if len <= 0 then 0
    else begin
      Bytes.blit_string s !pos buf off len;
      pos := !pos + len;
      len
    end

let chunk_sizes = [ 1; 7; 4096 ]

(* --- splitter ----------------------------------------------------------- *)

let test_fold_matches_split () =
  (* Crafted so that chunk size 1 and 7 put boundaries inside keywords,
     inside a quoted string containing [;], and between the quote toggles. *)
  let script =
    "SELECT a FROM t;\n\
     INSERT INTO logs VALUES ('semi;colons; inside');\n\
     ; ;\n\
     UPDATE t SET x = 'it''s; tricky' WHERE y = 2;\n\
     SELECT trailing FROM statement_without_semicolon"
  in
  let expected = Core.split_statements script in
  List.iter
    (fun chunk_size ->
      let streamed =
        List.rev
          (Core.fold_statements ~chunk_size
             ~read:(reader_of_string script)
             (fun acc stmt -> stmt :: acc)
             [])
      in
      Alcotest.(check (list string))
        (Printf.sprintf "chunk %d splits identically" chunk_size)
        expected streamed;
      (* Short reads compose with chunking. *)
      let dribbled =
        List.rev
          (Core.fold_statements ~chunk_size
             ~read:(reader_of_string ~cap:3 script)
             (fun acc stmt -> stmt :: acc)
             [])
      in
      Alcotest.(check (list string))
        (Printf.sprintf "chunk %d with 3-byte reads splits identically"
           chunk_size)
        expected dribbled)
    chunk_sizes

(* --- streamed parsing is whole-buffer parsing --------------------------- *)

let corpus_for name =
  let static =
    match name with
    | "minimal" -> Corpus.minimal_accept @ Corpus.minimal_reject
    | "scql" -> Corpus.scql_accept @ Corpus.scql_reject
    | "tinysql" -> Corpus.tinysql_accept @ Corpus.tinysql_reject
    | "embedded" -> Corpus.embedded_accept @ Corpus.embedded_reject
    | "analytics" -> Corpus.analytics_accept @ Corpus.analytics_reject
    | _ -> Corpus.full_accept
  in
  static @ Corpus.always_reject

let render_item (item : Service.Session.item) =
  match item.Service.Session.result with
  | Ok cst -> Fmt.str "ok %d %a" item.Service.Session.token_count
      Parser_gen.Cst.pp cst
  | Error e -> Fmt.str "err %a" Core.pp_error e

let test_stream_matches_batch () =
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      let name = d.Dialects.Dialect.name in
      let g = front_end name in
      (* Statements containing top-level [;] would be split into different
         statement lists by design; the corpora don't, but filter defensively
         so the test's premise is visible. *)
      let stmts =
        List.filter
          (fun sql -> List.length (Core.split_statements sql) <= 1)
          (corpus_for name)
      in
      let script = String.concat ";\n" stmts ^ ";" in
      (* The whole-buffer baseline on the committed engine: the gate is
         cross-engine as well as cross-chunking. *)
      let batch_session = Service.Session.create ~engine:`Committed g in
      let batch =
        Service.Session.parse_batch batch_session
          (Core.split_statements script)
      in
      let expected =
        List.map render_item batch.Service.Session.items
      in
      List.iter
        (fun chunk_size ->
          let streamed = ref [] in
          let stream_session = Service.Session.create ~engine:`Fused g in
          let stats =
            Service.Session.parse_stream ~chunk_size stream_session
              ~on_item:(fun item -> streamed := render_item item :: !streamed)
              ~read:(reader_of_string script)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s chunk %d: streamed fused = whole-buffer \
                             committed" name chunk_size)
            expected
            (List.rev !streamed);
          check_int
            (Printf.sprintf "%s chunk %d: statement count" name chunk_size)
            (List.length expected)
            stats.Service.Session.statements;
          check_int
            (Printf.sprintf "%s chunk %d: token total" name chunk_size)
            batch.Service.Session.batch_stats.Service.Session.tokens
            stats.Service.Session.tokens)
        chunk_sizes)
    Dialects.Dialect.all

(* --- memory ceiling ----------------------------------------------------- *)

(* A synthetic unbounded script: [read] fabricates statements on the fly,
   so no input buffer exists anywhere that could hide in the measurement. *)
let synthetic_reader ~bytes =
  let stmt = "SELECT nodeid, temp FROM sensors WHERE temp > 100;\n" in
  let n = String.length stmt in
  (* End on a statement boundary: a truncated tail would be a parse error. *)
  let bytes = bytes - (bytes mod n) in
  let remaining = ref bytes in
  fun buf off len ->
    let len = min len !remaining in
    if len <= 0 then 0
    else begin
      for i = 0 to len - 1 do
        Bytes.unsafe_set buf (off + i) stmt.[(bytes - !remaining + i) mod n]
      done;
      remaining := !remaining - len;
      len
    end

let test_stream_memory_ceiling () =
  let g = front_end "tinysql" in
  let session = Service.Session.create ~engine:`Fused g in
  let run bytes =
    let stats =
      Service.Session.parse_stream ~chunk_size:65536 session
        ~read:(synthetic_reader ~bytes)
    in
    check_bool
      (Printf.sprintf "%d-byte stream parsed" bytes)
      true
      (stats.Service.Session.statements > 0
      && stats.Service.Session.rejected = 0)
  in
  (* Warm up and set the high-water mark with a small stream, then stream
     16x the volume: the major-heap peak must not track input size. *)
  run 1_000_000;
  Gc.full_major ();
  let before = (Gc.quick_stat ()).Gc.top_heap_words in
  run 16_000_000;
  let after = (Gc.quick_stat ()).Gc.top_heap_words in
  let grew = after - before in
  check_bool
    (Printf.sprintf
       "top-of-heap grew by %d words streaming 16 MB (ceiling 524288)" grew)
    true
    (grew < 524_288)

(* --- raw streaming server ----------------------------------------------- *)

let raw_connect server =
  match Service.Server.address server with
  | Service.Wire.Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd
  | Service.Wire.Unix_socket path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd

let write_string fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let read_all fd =
  let buf = Bytes.create 4096 in
  let b = Buffer.create 256 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b buf 0 n;
      go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      (* A reset after the reply is still a read of the reply. *)
      Buffer.contents b
  in
  go ()

let with_stream_server f =
  match
    Service.Server.start ~workers:2 ~stream:true
      (Service.Wire.Tcp ("127.0.0.1", 0))
  with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Service.Server.stop server)
      (fun () -> f server)

let test_raw_stream_roundtrip () =
  let script =
    "SELECT a FROM t;\nSELECT b FROM u WHERE x = 'a;b';\nBOGUS STATEMENT;"
  in
  (* The in-process truth: same dialect, same engine, same chunked
     splitter — collect the exact lines the server must emit. *)
  let g = front_end "tinysql" in
  let session = Service.Session.create ~engine:`Fused g in
  let lines = Buffer.create 128 in
  let stats =
    Service.Session.parse_stream session
      ~on_item:(fun item ->
        Buffer.add_string lines (Service.Server.stream_line_of_item item))
      ~read:(reader_of_string script)
  in
  Buffer.add_string lines (Service.Server.stream_done_line stats);
  let expected = Buffer.contents lines in
  with_stream_server (fun server ->
      (* A cooperative client first. *)
      let fd = raw_connect server in
      write_string fd "Stinysql fused\n";
      write_string fd script;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      Alcotest.(check string) "streamed reply (whole writes)" expected
        (read_all fd);
      Unix.close fd;
      (* Then a dribbling client: header and body one byte at a time, so
         chunk boundaries fall inside the header line, inside tokens and
         inside the quoted [;]. *)
      let fd = raw_connect server in
      String.iter
        (fun c -> write_string fd (String.make 1 c))
        ("Stinysql fused\n" ^ script);
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      Alcotest.(check string) "streamed reply (dribbled writes)" expected
        (read_all fd);
      Unix.close fd)

let test_raw_stream_bad_header () =
  with_stream_server (fun server ->
      let fd = raw_connect server in
      write_string fd "Sbogus_dialect\nSELECT 1;";
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let reply = read_all fd in
      Unix.close fd;
      check_bool "unknown dialect draws an err line" true
        (String.length reply >= 4 && String.sub reply 0 4 = "err ");
      let fd = raw_connect server in
      write_string fd "Stinysql warp_drive\nSELECT 1;";
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let reply = read_all fd in
      Unix.close fd;
      check_bool "unknown engine draws an err line" true
        (String.length reply >= 4 && String.sub reply 0 4 = "err "))

let test_raw_stream_disabled () =
  (* Without [~stream:true] the ['S'] opener draws one err line and the
     framed protocol is untouched. *)
  match Service.Server.start ~workers:1 (Service.Wire.Tcp ("127.0.0.1", 0)) with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Service.Server.stop server)
      (fun () ->
        let fd = raw_connect server in
        write_string fd "Stinysql\nSELECT 1;";
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let reply = read_all fd in
        Unix.close fd;
        check_bool "streaming disabled draws an err line" true
          (String.length reply >= 4 && String.sub reply 0 4 = "err "))

let suite =
  [
    Alcotest.test_case "fold_statements = split_statements at any chunking"
      `Quick test_fold_matches_split;
    Alcotest.test_case
      "streamed fused parsing = whole-buffer committed parsing" `Quick
      test_stream_matches_batch;
    Alcotest.test_case "streaming holds a fixed memory ceiling" `Quick
      test_stream_memory_ceiling;
    Alcotest.test_case "raw stream server round-trip is byte-identical"
      `Quick test_raw_stream_roundtrip;
    Alcotest.test_case "raw stream bad header" `Quick
      test_raw_stream_bad_header;
    Alcotest.test_case "raw stream disabled by default" `Quick
      test_raw_stream_disabled;
  ]
