(* Differential gate for the family-based compilation path.

   The family artifact compiles the product line's fragments once into a
   variability-aware program; {!Core.generate_family} then instantiates a
   configuration by a presence-condition mask/replay plus interned LL(k)
   classification. Its contract is behavioral identity with the cold
   pipeline ({!Core.generate}): same composed grammar, token set and
   composition sequence, the same dispatch classification, and the same
   parse results — CSTs leaf-for-leaf on acceptance, furthest-failure
   errors field-for-field on rejection — on the shipped corpora and on
   grammar-sampled sentences. This suite enforces that contract for all
   six shipped dialects and for a pool of random valid configurations,
   and checks that invalid configurations are rejected by validation
   before any masking work happens. *)

let check_bool = Alcotest.(check bool)

let ebnf (g : Core.generated) = Fmt.str "%a" Grammar.Cfg.pp g.Core.grammar

let summary (g : Core.generated) =
  Fmt.str "%a" Parser_gen.Engine.pp_summary (Core.dispatch_summary g)

let cold_generate ~label config =
  match Core.generate ~label config with
  | Ok g -> g
  | Error e -> Alcotest.failf "cold generate %s: %a" label Core.pp_error e

let family_generate ~label config =
  match Core.generate_family ~label config with
  | Ok g -> g
  | Error e -> Alcotest.failf "family generate %s: %a" label Core.pp_error e

(* Full structural equality of end-to-end parse results: CSTs
   leaf-for-leaf, errors (lexical or syntactic) field-for-field. *)
let result_testable =
  Alcotest.testable
    (fun ppf -> function
      | Ok cst -> Fmt.pf ppf "Ok %a" Parser_gen.Cst.pp cst
      | Error e -> Fmt.pf ppf "Error (%a)" Core.pp_error e)
    (fun a b ->
      match (a, b) with
      | Ok c1, Ok c2 -> c1 = c2
      | Error e1, Error e2 -> e1 = e2
      | _ -> false)

let check_identical ~label ~statements cold fam =
  Alcotest.(check string) (label ^ ": composed grammar") (ebnf cold) (ebnf fam);
  check_bool (label ^ ": token set") true (cold.Core.tokens = fam.Core.tokens);
  Alcotest.(check (list string))
    (label ^ ": composition sequence")
    cold.Core.sequence fam.Core.sequence;
  Alcotest.(check string)
    (label ^ ": dispatch classification")
    (summary cold) (summary fam);
  List.iter
    (fun sql ->
      Alcotest.check result_testable
        (Printf.sprintf "%s: parse %S" label sql)
        (Core.parse_cst cold sql) (Core.parse_cst fam sql))
    statements

let corpus_for name =
  let static =
    match name with
    | "minimal" -> Corpus.minimal_accept @ Corpus.minimal_reject
    | "scql" -> Corpus.scql_accept @ Corpus.scql_reject
    | "tinysql" -> Corpus.tinysql_accept @ Corpus.tinysql_reject
    | "embedded" -> Corpus.embedded_accept @ Corpus.embedded_reject
    | "analytics" -> Corpus.analytics_accept @ Corpus.analytics_reject
    | _ -> Corpus.full_accept
  in
  static @ Corpus.always_reject

let test_dialects_identical () =
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      let name = d.Dialects.Dialect.name in
      let cold = cold_generate ~label:name d.Dialects.Dialect.config in
      let fam = family_generate ~label:name d.Dialects.Dialect.config in
      let statements =
        corpus_for name
        @ Service.Sentences.sample ~count:25
            ~seed:(7817 + (Hashtbl.hash name mod 1000))
            cold
      in
      check_identical ~label:name ~statements cold fam)
    Dialects.Dialect.all

(* Random valid configurations: tree samples closed under requires, with
   OR/ALT-group violations repaired by selecting the group's first member
   (the e7 sweep's repair), then filtered through validate. *)
let rec repair config budget =
  if budget = 0 then config
  else
    match Feature.Config.validate Sql.Model.model config with
    | [] -> config
    | violations ->
      let additions =
        List.filter_map
          (fun v ->
            match v with
            | Feature.Config.Or_group_violation { parent }
            | Feature.Config.Alt_group_violation { parent; selected = [] } -> (
              match
                Feature.Tree.find Sql.Model.model.Feature.Model.concept parent
              with
              | Some p ->
                List.find_map
                  (fun g ->
                    match g with
                    | Feature.Tree.Or_group ((m : Feature.Tree.t) :: _)
                    | Feature.Tree.Alt_group (m :: _) ->
                      Some m.Feature.Tree.name
                    | _ -> None)
                  p.Feature.Tree.groups
              | None -> None)
            | _ -> None)
          violations
      in
      if additions = [] then config
      else
        repair
          (Sql.Model.close
             (Feature.Config.union config (Feature.Config.of_names additions)))
          (budget - 1)

let random_valid_configs ~want =
  let rec draw acc i =
    if List.length acc >= want || i >= 200 then List.rev acc
    else begin
      let config = repair (Feature.Config.sample Sql.Model.model ~seed:((i * 37) + 1)) 8 in
      if
        Feature.Config.is_valid Sql.Model.model config
        && not (List.mem config acc)
      then draw (config :: acc) (i + 1)
      else draw acc (i + 1)
    end
  in
  draw [] 0

let test_random_configs_identical () =
  let configs = random_valid_configs ~want:20 in
  check_bool "drew at least 20 valid configurations" true
    (List.length configs >= 20);
  List.iteri
    (fun i config ->
      let label = Printf.sprintf "sample-%d" i in
      let cold = cold_generate ~label config in
      let fam = family_generate ~label config in
      let statements =
        Service.Sentences.sample ~count:8 ~seed:(2833 + i) cold
        @ Corpus.always_reject
      in
      check_identical ~label ~statements cold fam)
    configs

let test_invalid_config_rejected_before_masking () =
  let fam = Core.family () in
  let before = (Family.stats fam).Family.instantiations in
  let invalid = Feature.Config.of_names [ "Where" ] in
  (match Family.instantiate fam invalid with
  | Error (Compose.Composer.Invalid_configuration _) -> ()
  | Error e ->
    Alcotest.failf "unexpected error: %a" Compose.Composer.pp_error e
  | Ok _ -> Alcotest.fail "invalid config must be rejected");
  (match Core.generate_family invalid with
  | Error (Core.Compose_error (Compose.Composer.Invalid_configuration _)) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Core.pp_error e
  | Ok _ -> Alcotest.fail "invalid config must be rejected");
  let after = (Family.stats fam).Family.instantiations in
  Alcotest.(check int)
    "rejected before masking: instantiation counter unchanged" before after

let test_family_stats_shape () =
  ignore (family_generate ~label:"tinysql" Dialects.Dialect.tinysql.Dialects.Dialect.config);
  let s = Family.stats (Core.family ()) in
  check_bool "artifact has rules" true (s.Family.rules > 0);
  check_bool "artifact has tokens" true (s.Family.tokens > 0);
  check_bool "artifact size recorded" true (s.Family.size_ints > 0);
  check_bool "instantiations counted" true (s.Family.instantiations > 0);
  check_bool "core fragments within fragments" true
    (s.Family.core_fragments <= s.Family.fragments)

let suite =
  [
    Alcotest.test_case "six dialects: family products identical to cold" `Slow
      test_dialects_identical;
    Alcotest.test_case "random valid configs: family identical to cold" `Slow
      test_random_configs_identical;
    Alcotest.test_case "invalid config rejected before masking" `Quick
      test_invalid_config_rejected_before_masking;
    Alcotest.test_case "family stats shape" `Quick test_family_stats_shape;
  ]
