(* Tests for the generated scanners. *)

open Lexing_gen
open Def_tokens

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Local list view over the array API (the deprecated [Scanner.scan] list
   entry point is gone). *)
let scan scanner input =
  Result.map Array.to_list (Scanner.scan_tokens scanner input)

let kinds scanner input =
  match scan scanner input with
  | Ok tokens -> List.map (fun (t : Token.t) -> t.kind) tokens
  | Error e -> Alcotest.failf "lex error: %a" Scanner.pp_error e

let texts scanner input =
  match scan scanner input with
  | Ok tokens -> List.map (fun (t : Token.t) -> t.text) tokens
  | Error e -> Alcotest.failf "lex error: %a" Scanner.pp_error e

let basic = Scanner.create basic_set

let test_keywords_case_insensitive () =
  Alcotest.(check (list string)) "kinds"
    [ "SELECT"; "IDENT"; "FROM"; "IDENT"; "EOF" ]
    (kinds basic "select a FROM t");
  Alcotest.(check (list string)) "mixed case"
    [ "SELECT"; "IDENT"; "FROM"; "IDENT"; "EOF" ]
    (kinds basic "SeLeCt a fRoM t")

let test_keyword_spelling_preserved () =
  Alcotest.(check (list string)) "texts keep source spelling"
    [ "sElEcT"; "x"; "" ]
    (texts basic "sElEcT x")

let test_unknown_keyword_is_identifier () =
  (* WINDOW is not in the basic token set: it scans as a plain identifier —
     keywords are features. *)
  Alcotest.(check (list string)) "window is an identifier"
    [ "IDENT"; "EOF" ]
    (kinds basic "window")

let test_punct_longest_match () =
  Alcotest.(check (list string)) "<= is one token"
    [ "IDENT"; "LESS_EQ"; "UNSIGNED_INTEGER"; "EOF" ]
    (kinds basic "a <= 1");
  Alcotest.(check (list string)) "< then ="
    [ "IDENT"; "LESS"; "EQUALS"; "UNSIGNED_INTEGER"; "EOF" ]
    (kinds basic "a < = 1")

let test_concat_operator () =
  Alcotest.(check (list string)) "||"
    [ "IDENT"; "CONCAT"; "IDENT"; "EOF" ]
    (kinds basic "a || b")

let test_numbers () =
  Alcotest.(check (list string)) "integer vs decimal"
    [ "UNSIGNED_INTEGER"; "DECIMAL_LITERAL"; "DECIMAL_LITERAL"; "DECIMAL_LITERAL"; "EOF" ]
    (kinds basic "42 3.25 1e6 2.5E-3");
  check_string "decimal text" "3.25" (List.nth (texts basic "3.25") 0)

let test_leading_dot_decimal () =
  Alcotest.(check (list string)) "leading dot"
    [ "DECIMAL_LITERAL"; "EOF" ]
    (kinds basic ".5");
  check_string "text" ".5" (List.nth (texts basic ".5") 0)

let test_integer_then_period () =
  (* "1." without a following digit: integer, then punctuation. *)
  Alcotest.(check (list string)) "no accidental decimal"
    [ "UNSIGNED_INTEGER"; "PERIOD"; "IDENT"; "EOF" ]
    (kinds basic "1.x")

let test_string_literals () =
  check_string "simple" "abc" (List.nth (texts basic "'abc'") 0);
  check_string "escaped quote" "it's" (List.nth (texts basic "'it''s'") 0);
  check_string "empty" "" (List.nth (texts basic "''") 0)

let test_unterminated_string () =
  match scan basic "'oops" with
  | Error e -> check_bool "mentions string" true
                 (Astring_contains.contains e.Scanner.message "string")
  | Ok _ -> Alcotest.fail "unterminated string must fail"

let test_quoted_identifier () =
  Alcotest.(check (list string)) "kind" [ "QUOTED_IDENT"; "EOF" ]
    (kinds basic "\"Order Total\"");
  check_string "text unquoted" "Order Total" (List.nth (texts basic "\"Order Total\"") 0)

let test_comments_skipped () =
  Alcotest.(check (list string)) "line comment"
    [ "SELECT"; "IDENT"; "EOF" ]
    (kinds basic "SELECT a -- trailing comment");
  Alcotest.(check (list string)) "block comment"
    [ "SELECT"; "IDENT"; "EOF" ]
    (kinds basic "SELECT /* inline\n comment */ a")

let test_unterminated_block_comment () =
  check_bool "error" true (Result.is_error (scan basic "SELECT /* oops"))

let test_positions () =
  match scan basic "SELECT\n  a" with
  | Error _ -> Alcotest.fail "scan"
  | Ok tokens ->
    let a = List.nth tokens 1 in
    check_int "line" 2 a.Token.pos.Token.line;
    check_int "column" 3 a.Token.pos.Token.column;
    check_int "offset" 9 a.Token.pos.Token.offset

let test_unexpected_character () =
  match scan basic "a ? b" with
  | Error e -> check_int "at the right column" 3 e.Scanner.pos.Token.column
  | Ok _ -> Alcotest.fail "? is not a token"

let test_disabled_classes () =
  (* A scanner without a string-literal class rejects strings. *)
  let tiny = Scanner.create [ ("IDENT", Spec.Class Spec.Identifier) ] in
  check_bool "strings rejected" true (Result.is_error (scan tiny "'x'"));
  check_bool "numbers rejected" true (Result.is_error (scan tiny "42"));
  check_bool "identifiers fine" true (Result.is_ok (scan tiny "abc"))

let test_counts () =
  check_bool "keyword count" true (Scanner.keyword_count basic >= 2);
  check_bool "punct count" true (Scanner.punct_count basic >= 5)

let test_eof_always_last () =
  match scan basic "" with
  | Ok [ eof ] -> check_string "eof kind" "EOF" eof.Token.kind
  | _ -> Alcotest.fail "empty input yields exactly EOF"

let test_underscored_keyword () =
  let s =
    Scanner.create
      (("CURRENT_DATE", Spec.Keyword "CURRENT_DATE") :: basic_set)
  in
  Alcotest.(check (list string)) "single token" [ "CURRENT_DATE"; "EOF" ]
    (kinds s "current_date")

(* ------------------------------------------------------------------ *)
(* Struct-of-arrays stream                                            *)
(* ------------------------------------------------------------------ *)

let token_testable : Token.t Alcotest.testable =
  Alcotest.testable
    (fun ppf (t : Token.t) ->
      Fmt.pf ppf "%s(%S)@%d:%d:%d" t.kind t.text t.pos.Token.line
        t.pos.Token.column t.pos.Token.offset)
    ( = )

let soa_inputs =
  [
    "";
    "select a FROM t";
    "SELECT\n  a, b FROM \"Order Total\" WHERE x <= 1.5e-3";
    "'it''s' .5 42 /* block\ncomment */ a -- tail";
    "a\n\n\nb\n";
    "SeLeCt current_date'x''y''z'";
  ]

let test_soa_matches_scan_tokens () =
  List.iter
    (fun input ->
      let expected =
        match Scanner.scan_tokens basic input with
        | Ok t -> t
        | Error e -> Alcotest.failf "scan_tokens: %a" Scanner.pp_error e
      in
      (* Full materialization agrees... *)
      (match Scanner.scan_soa basic input with
      | Error e -> Alcotest.failf "scan_soa: %a" Scanner.pp_error e
      | Ok soa ->
        Alcotest.(check (array token_testable))
          (Printf.sprintf "tokens_of_soa %S" input)
          expected
          (Scanner.tokens_of_soa basic soa);
        check_int "count" (Array.length expected - 1) (Scanner.soa_count soa));
      (* ...and so does random-access materialization (binary-searched
         positions instead of the sequential newline cursor). *)
      match Scanner.scan_soa basic input with
      | Error _ -> assert false
      | Ok soa ->
        Array.iteri
          (fun i exp ->
            Alcotest.(check token_testable)
              (Printf.sprintf "token_of_soa %S #%d" input i)
              exp
              (Scanner.token_of_soa basic soa i))
          expected)
    soa_inputs

let test_soa_errors_match () =
  List.iter
    (fun input ->
      match Scanner.scan_tokens basic input, Scanner.scan_soa basic input with
      | Error a, Error b ->
        check_string "message" a.Scanner.message b.Scanner.message;
        check_int "line" a.Scanner.pos.Token.line b.Scanner.pos.Token.line;
        check_int "column" a.Scanner.pos.Token.column b.Scanner.pos.Token.column;
        check_int "offset" a.Scanner.pos.Token.offset b.Scanner.pos.Token.offset
      | Ok _, Ok _ -> Alcotest.failf "expected %S to fail" input
      | _ -> Alcotest.failf "engines disagree on %S" input)
    [ "'oops"; "a ? b"; "SELECT /* oops"; "a\nb\n$"; "/*\n\n\noops" ]

let test_soa_arena_reuse () =
  (* The arena is reused: a second scan invalidates the first stream, and
     repeated scans agree with themselves. *)
  let first =
    match Scanner.scan_soa basic "SELECT a FROM t" with
    | Ok soa -> Scanner.tokens_of_soa basic soa
    | Error _ -> Alcotest.fail "scan 1"
  in
  (match Scanner.scan_soa basic "'string' 1 2 3" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "scan 2");
  match Scanner.scan_soa basic "SELECT a FROM t" with
  | Ok soa ->
    Alcotest.(check (array token_testable))
      "rescan agrees" first
      (Scanner.tokens_of_soa basic soa)
  | Error _ -> Alcotest.fail "scan 3"

let suite =
  [
    Alcotest.test_case "keywords case-insensitive" `Quick test_keywords_case_insensitive;
    Alcotest.test_case "keyword spelling preserved" `Quick test_keyword_spelling_preserved;
    Alcotest.test_case "unknown keyword is identifier" `Quick
      test_unknown_keyword_is_identifier;
    Alcotest.test_case "punct longest match" `Quick test_punct_longest_match;
    Alcotest.test_case "concat operator" `Quick test_concat_operator;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "integer then period" `Quick test_integer_then_period;
    Alcotest.test_case "leading dot decimal" `Quick test_leading_dot_decimal;
    Alcotest.test_case "string literals" `Quick test_string_literals;
    Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
    Alcotest.test_case "quoted identifier" `Quick test_quoted_identifier;
    Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
    Alcotest.test_case "unterminated block comment" `Quick
      test_unterminated_block_comment;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "unexpected character" `Quick test_unexpected_character;
    Alcotest.test_case "disabled classes" `Quick test_disabled_classes;
    Alcotest.test_case "scanner size counts" `Quick test_counts;
    Alcotest.test_case "EOF always last" `Quick test_eof_always_last;
    Alcotest.test_case "underscored keyword" `Quick test_underscored_keyword;
    Alcotest.test_case "SoA stream matches scan_tokens" `Quick
      test_soa_matches_scan_tokens;
    Alcotest.test_case "SoA errors match" `Quick test_soa_errors_match;
    Alcotest.test_case "SoA arena reuse" `Quick test_soa_arena_reuse;
  ]
