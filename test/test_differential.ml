(* Differential suite: the interned {!Parser_gen.Engine} against the
   string-keyed {!Parser_gen.Reference} engine it replaced.

   The reference engine is kept as the executable specification of the
   parsing semantics. For every shipped dialect, both engines run over the
   shared accept/reject corpora plus a grammar-sampled corpus, and must
   produce identical outcomes end to end: the same CST on acceptance
   (priority-ordered alternatives, greedy-but-backtrackable repetition),
   and the same furthest-failure position, found token, and sorted
   expected set on rejection. The comparison is repeated with memoization
   and FIRST-set pruning disabled, which must change performance only,
   never a single result. *)

let check_bool = Alcotest.(check bool)

let generated =
  lazy
    (List.map
       (fun (d : Dialects.Dialect.t) ->
         match Core.generate_dialect d with
         | Ok g -> (d.Dialects.Dialect.name, g)
         | Error e ->
           Alcotest.failf "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
       Dialects.Dialect.all)

let front_end name = List.assoc name (Lazy.force generated)

(* The same per-dialect workload the cache-equivalence test uses: static
   accept/reject lists, universally rejected statements, and the dialect's
   unselected-feature probes. *)
let corpus_for name =
  let static =
    match name with
    | "minimal" -> Corpus.minimal_accept @ Corpus.minimal_reject
    | "scql" -> Corpus.scql_accept @ Corpus.scql_reject
    | "tinysql" -> Corpus.tinysql_accept @ Corpus.tinysql_reject
    | "embedded" -> Corpus.embedded_accept @ Corpus.embedded_reject
    | "analytics" -> Corpus.analytics_accept @ Corpus.analytics_reject
    | _ -> Corpus.full_accept
  in
  static @ Corpus.always_reject
  @ (try List.assoc name Corpus.unselected with Not_found -> [])

let sampled name =
  Service.Sentences.sample ~count:40
    ~seed:(6007 + (Hashtbl.hash name mod 1000))
    (front_end name)

let reference_of ?memoize ?prune (g : Core.generated) =
  match Parser_gen.Reference.generate ?memoize ?prune g.Core.grammar with
  | Ok r -> r
  | Error e ->
    Alcotest.failf "reference generate: %a" Parser_gen.Engine.pp_gen_error e

let interned_of ?memoize ?prune (g : Core.generated) =
  match
    Parser_gen.Engine.generate ?memoize ?prune
      ~interner:(Lexing_gen.Scanner.interner g.Core.scanner)
      g.Core.grammar
  with
  | Ok p -> p
  | Error e ->
    Alcotest.failf "interned generate: %a" Parser_gen.Engine.pp_gen_error e

(* Full structural equality: CSTs leaf-for-leaf, errors field-for-field
   (position, found token, sorted expected set). *)
let result_testable =
  Alcotest.testable
    (fun ppf -> function
      | Ok cst -> Fmt.pf ppf "Ok %a" Parser_gen.Cst.pp cst
      | Error e -> Fmt.pf ppf "Error (%a)" Parser_gen.Engine.pp_parse_error e)
    (fun a b ->
      match (a, b) with
      | Ok c1, Ok c2 -> c1 = c2
      | Error e1, Error e2 -> e1 = e2
      | _ -> false)

let check_agree ~msg refp eng toks =
  Alcotest.check result_testable msg
    (Parser_gen.Reference.parse refp (Array.to_list toks))
    (Parser_gen.Engine.parse_tokens eng toks)

let test_default_agreement name () =
  let g = front_end name in
  let refp = reference_of g in
  List.iter
    (fun sql ->
      match Core.scan_tokens g sql with
      | Error _ -> () (* lexical rejection: no token stream to disagree on *)
      | Ok toks ->
        check_agree ~msg:(Printf.sprintf "%s: %s" name sql) refp
          g.Core.parser toks)
    (corpus_for name @ sampled name)

let test_ablation_agreement name () =
  let g = front_end name in
  List.iter
    (fun (label, memoize, prune) ->
      let refp = reference_of ~memoize ~prune g in
      let eng = interned_of ~memoize ~prune g in
      List.iter
        (fun sql ->
          match Core.scan_tokens g sql with
          | Error _ -> ()
          | Ok toks ->
            check_agree
              ~msg:(Printf.sprintf "%s (%s): %s" name label sql)
              refp eng toks;
            (* The flags are pure optimizations: the ablated engine must
               also agree with the fully optimized one on acceptance. *)
            check_bool
              (Printf.sprintf "%s (%s) language unchanged: %s" name label sql)
              (Result.is_ok (Parser_gen.Engine.parse_tokens g.Core.parser toks))
              (Result.is_ok (Parser_gen.Engine.parse_tokens eng toks)))
        (corpus_for name))
    [ ("no memoization", false, true); ("no pruning", true, false) ]

let test_reinterning_boundary () =
  (* Tokens that never went through the shared scanner (hand-built, or from
     a foreign scanner) carry [no_id] or a foreign stamp; the engine must
     re-intern them by kind and still agree with the reference. *)
  let g = front_end "embedded" in
  let refp = reference_of g in
  List.iter
    (fun sql ->
      match Core.scan_tokens g sql with
      | Error _ -> ()
      | Ok toks ->
        let stripped =
          Array.map
            (fun (t : Lexing_gen.Token.t) ->
              { t with Lexing_gen.Token.kind_id = Lexing_gen.Token.no_id })
            toks
        in
        check_agree
          ~msg:(Printf.sprintf "embedded (unstamped tokens): %s" sql)
          refp g.Core.parser stripped)
    (Corpus.embedded_accept @ Corpus.embedded_reject)

let suite =
  List.concat_map
    (fun (d : Dialects.Dialect.t) ->
      let name = d.Dialects.Dialect.name in
      [
        Alcotest.test_case
          (Printf.sprintf "%s: interned = reference (corpus + sampled)" name)
          `Quick
          (test_default_agreement name);
        Alcotest.test_case
          (Printf.sprintf "%s: ablations change nothing but speed" name)
          `Quick
          (test_ablation_agreement name);
      ])
    Dialects.Dialect.all
  @ [
      Alcotest.test_case "unstamped tokens are re-interned" `Quick
        test_reinterning_boundary;
    ]
