(* Differential suite: the prediction-compiled {!Parser_gen.Engine} against
   the string-keyed {!Parser_gen.Reference} engine it replaced.

   The reference engine is kept as the executable specification of the
   parsing semantics. For every shipped dialect, five engines run over the
   shared accept/reject corpora plus a grammar-sampled corpus and must
   produce identical outcomes end to end: the {e committed} engine (the
   default — prediction-compiled dispatch over the left-factored grammar),
   the {e bytecode VM} (the committed region lowered to a flat program,
   running over the struct-of-arrays token stream), the {e fused} VM
   (the same program pulling tokens straight from the scanner cursor —
   compared from the raw bytes, lexical errors included), the {e memoized}
   engine (same grammar, dispatch disabled: the pure backtracker), and the
   {e reference}. Identical means the same CST on
   acceptance (priority-ordered alternatives, greedy-but-backtrackable
   repetition) and the same furthest-failure position, found token, and
   sorted expected set on rejection. The comparison is repeated with
   memoization and FIRST-set pruning disabled, and with the opt-in
   unit-rule inlining normalization, which must change performance (or tree
   labels, for inlining) only, never acceptance.

   Left-factoring is additionally checked directly: the factored grammar
   must yield the same CSTs and the same failure positions as the composed
   grammar it came from, with expected sets allowed to widen to supersets
   (a pruned group records the whole FIRST set of a residual suffix where
   the unfactored grammar skipped an optional prefix of it silently). *)

let check_bool = Alcotest.(check bool)

let generated =
  lazy
    (List.map
       (fun (d : Dialects.Dialect.t) ->
         match Core.generate_dialect d with
         | Ok g -> (d.Dialects.Dialect.name, g)
         | Error e ->
           Alcotest.failf "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
       Dialects.Dialect.all)

let front_end name = List.assoc name (Lazy.force generated)

(* The same per-dialect workload the cache-equivalence test uses: static
   accept/reject lists, universally rejected statements, and the dialect's
   unselected-feature probes. *)
let corpus_for name =
  let static =
    match name with
    | "minimal" -> Corpus.minimal_accept @ Corpus.minimal_reject
    | "scql" -> Corpus.scql_accept @ Corpus.scql_reject
    | "tinysql" -> Corpus.tinysql_accept @ Corpus.tinysql_reject
    | "embedded" -> Corpus.embedded_accept @ Corpus.embedded_reject
    | "analytics" -> Corpus.analytics_accept @ Corpus.analytics_reject
    | _ -> Corpus.full_accept
  in
  static @ Corpus.always_reject
  @ (try List.assoc name Corpus.unselected with Not_found -> [])

let sampled name =
  Service.Sentences.sample ~count:40
    ~seed:(6007 + (Hashtbl.hash name mod 1000))
    (front_end name)

(* The grammar the shipped parser actually runs on: the left-factored form
   of the composed grammar. *)
let engine_grammar (g : Core.generated) = Parser_gen.Engine.grammar g.Core.parser

let reference_on ?memoize ?prune grammar =
  match Parser_gen.Reference.generate ?memoize ?prune grammar with
  | Ok r -> r
  | Error e ->
    Alcotest.failf "reference generate: %a" Parser_gen.Engine.pp_gen_error e

let engine_on ?memoize ?prune ?dispatch (g : Core.generated) grammar =
  match
    Parser_gen.Engine.generate ?memoize ?prune ?dispatch
      ~interner:(Lexing_gen.Scanner.interner g.Core.scanner)
      grammar
  with
  | Ok p -> p
  | Error e ->
    Alcotest.failf "engine generate: %a" Parser_gen.Engine.pp_gen_error e

(* Full structural equality: CSTs leaf-for-leaf, errors field-for-field
   (position, found token, sorted expected set). *)
let result_testable =
  Alcotest.testable
    (fun ppf -> function
      | Ok cst -> Fmt.pf ppf "Ok %a" Parser_gen.Cst.pp cst
      | Error e -> Fmt.pf ppf "Error (%a)" Parser_gen.Engine.pp_parse_error e)
    (fun a b ->
      match (a, b) with
      | Ok c1, Ok c2 -> c1 = c2
      | Error e1, Error e2 -> e1 = e2
      | _ -> false)

let check_agree ~msg refp eng toks =
  Alcotest.check result_testable msg
    (Parser_gen.Reference.parse refp (Array.to_list toks))
    (Parser_gen.Engine.parse_tokens eng toks)

let check_engines_agree ~msg a b toks =
  Alcotest.check result_testable msg
    (Parser_gen.Engine.parse_tokens a toks)
    (Parser_gen.Engine.parse_tokens b toks)

(* Four-way: committed (the shipped parser) = bytecode VM = memoized (same
   factored grammar, dispatch off) = reference (executable spec on that
   grammar). The VM is compared twice: at the token level (hand-delivered
   token arrays through [parse_tokens_vm]) and end to end over the SoA
   stream ([Core.parse_cst_vm]), which also exercises the lazy token
   materialization on CST leaves and error edges. *)
let test_four_way_agreement name () =
  let g = front_end name in
  let refp = reference_on (engine_grammar g) in
  let memop = engine_on ~dispatch:false g (engine_grammar g) in
  List.iter
    (fun sql ->
      (match Core.scan_tokens g sql with
      | Error _ -> () (* lexical rejection: no token stream to disagree on *)
      | Ok toks ->
        check_agree ~msg:(Printf.sprintf "%s (ref vs committed): %s" name sql)
          refp g.Core.parser toks;
        check_engines_agree
          ~msg:(Printf.sprintf "%s (memo vs committed): %s" name sql)
          memop g.Core.parser toks;
        Alcotest.check result_testable
          (Printf.sprintf "%s (vm vs committed, tokens): %s" name sql)
          (Parser_gen.Engine.parse_tokens g.Core.parser toks)
          (Parser_gen.Engine.parse_tokens_vm g.Core.parser toks));
      let strip = function
        | Ok cst -> Ok cst
        | Error (Core.Parse_error e) -> Error (`Parse e)
        | Error (Core.Lex_error e) -> Error (`Lex e)
        | Error _ -> Error `Other
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s (vm vs committed, end to end): %s" name sql)
        true
        (strip (Core.parse_cst g sql) = strip (Core.parse_cst_vm g sql));
      (* The fused engine scans as it parses, so it is compared end to end
         from the raw bytes: same CSTs, same parse errors, and the same
         lexical errors at the same position — the corpora include
         statements whose rejection is lexical, plus (on analytics)
         statements that exercise the FB memoized-fallback oracle and its
         lazy completion of the scan. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s (fused vs vm, end to end): %s" name sql)
        true
        (strip (Core.parse_cst_vm g sql) = strip (Core.parse_cst_fused g sql));
      let fused_count, fused_result = Core.parse_cst_fused_counted g sql in
      (match Core.scan_tokens g sql with
      | Ok toks when Result.is_ok fused_result ->
        Alcotest.(check int)
          (Printf.sprintf "%s (fused token count): %s" name sql)
          (Array.length toks - 1)
          fused_count
      | _ -> ());
      Alcotest.(check bool)
        (Printf.sprintf "%s (recognize agrees): %s" name sql)
        (Result.is_ok (Core.parse_cst g sql))
        (Result.is_ok (Core.recognize g sql));
      Alcotest.(check bool)
        (Printf.sprintf "%s (recognize_fused agrees): %s" name sql)
        (Result.is_ok (Core.parse_cst g sql))
        (Result.is_ok (Core.recognize_fused g sql)))
    (corpus_for name @ sampled name)

(* Factoring itself: same CSTs and failure positions as the composed
   grammar, expected sets allowed to widen. *)
let test_factoring_preserves name () =
  let g = front_end name in
  let composed = reference_on g.Core.grammar in
  let factored = reference_on (engine_grammar g) in
  List.iter
    (fun sql ->
      match Core.scan_tokens g sql with
      | Error _ -> ()
      | Ok toks -> (
        let a = Parser_gen.Reference.parse composed (Array.to_list toks) in
        let b = Parser_gen.Reference.parse factored (Array.to_list toks) in
        match (a, b) with
        | Ok c1, Ok c2 ->
          Alcotest.check
            (Alcotest.testable Parser_gen.Cst.pp ( = ))
            (Printf.sprintf "%s factored CST: %s" name sql)
            c1 c2
        | Error e1, Error e2 ->
          check_bool
            (Printf.sprintf "%s factored failure position: %s" name sql)
            true
            (e1.Parser_gen.Engine.pos = e2.Parser_gen.Engine.pos
            && e1.found = e2.found);
          check_bool
            (Printf.sprintf "%s factored expected superset: %s" name sql)
            true
            (List.for_all
               (fun t -> List.mem t e2.Parser_gen.Engine.expected)
               e1.Parser_gen.Engine.expected)
        | _ ->
          Alcotest.failf "%s factoring changed acceptance of: %s" name sql))
    (corpus_for name @ sampled name)

let test_ablation_agreement name () =
  let g = front_end name in
  List.iter
    (fun (label, memoize, prune) ->
      let refp = reference_on ~memoize ~prune (engine_grammar g) in
      let eng = engine_on ~memoize ~prune g (engine_grammar g) in
      List.iter
        (fun sql ->
          match Core.scan_tokens g sql with
          | Error _ -> ()
          | Ok toks ->
            check_agree
              ~msg:(Printf.sprintf "%s (%s): %s" name label sql)
              refp eng toks;
            (* The flags are pure optimizations: the ablated engine must
               also agree with the fully optimized one on acceptance. *)
            check_bool
              (Printf.sprintf "%s (%s) language unchanged: %s" name label sql)
              (Result.is_ok (Parser_gen.Engine.parse_tokens g.Core.parser toks))
              (Result.is_ok (Parser_gen.Engine.parse_tokens eng toks)))
        (corpus_for name))
    [ ("no memoization", false, true); ("no pruning", true, false) ]

(* The opt-in inlining normalization relabels trees, so the three engines
   are compared with all of them running the same inlined grammar. *)
let test_inlined_agreement name () =
  let g = front_end name in
  let inlined, _ = Grammar.Factor.normalize ~inline:true g.Core.grammar in
  let refp = reference_on inlined in
  let committed = engine_on g inlined in
  let memop = engine_on ~dispatch:false g inlined in
  List.iter
    (fun sql ->
      match Core.scan_tokens g sql with
      | Error _ -> ()
      | Ok toks ->
        check_agree
          ~msg:(Printf.sprintf "%s inlined (ref vs committed): %s" name sql)
          refp committed toks;
        check_engines_agree
          ~msg:(Printf.sprintf "%s inlined (memo vs committed): %s" name sql)
          memop committed toks)
    (corpus_for name @ sampled name)

let test_reinterning_boundary () =
  (* Tokens that never went through the shared scanner (hand-built, or from
     a foreign scanner) carry [no_id] or a foreign stamp; the engine must
     re-intern them by kind and still agree with the reference. *)
  let g = front_end "embedded" in
  let refp = reference_on (engine_grammar g) in
  List.iter
    (fun sql ->
      match Core.scan_tokens g sql with
      | Error _ -> ()
      | Ok toks ->
        let stripped =
          Array.map
            (fun (t : Lexing_gen.Token.t) ->
              { t with Lexing_gen.Token.kind_id = Lexing_gen.Token.no_id })
            toks
        in
        check_agree
          ~msg:(Printf.sprintf "embedded (unstamped tokens): %s" sql)
          refp g.Core.parser stripped)
    (Corpus.embedded_accept @ Corpus.embedded_reject)

(* Classification unit tests: lookahead strength maps to the right
   decision, and fallback rules still parse (on the memoized path). *)

let build_engine g =
  match Parser_gen.Engine.generate g with
  | Ok p -> p
  | Error e -> Alcotest.failf "generate: %a" Parser_gen.Engine.pp_gen_error e

let tok kind =
  { Lexing_gen.Token.kind; kind_id = Lexing_gen.Token.no_id; text = kind;
    pos = { Lexing_gen.Token.line = 1; column = 1; offset = 0 } }

let test_k2_commits () =
  (* [s : A B | A C] conflicts at k = 1 (both predict A) and resolves at
     k = 2: the whole grammar must classify committed. *)
  let open Grammar.Builder in
  let g =
    grammar ~start:"s" [ rule "s" [ [ t "A"; t "B" ]; [ t "A"; t "C" ] ] ]
  in
  let p = build_engine g in
  let s = Parser_gen.Engine.summary p in
  Alcotest.(check int) "k2 points" 1 s.Parser_gen.Engine.k2_points;
  Alcotest.(check int) "ambiguous points" 0 s.Parser_gen.Engine.ambiguous_points;
  Alcotest.(check int) "committed nts" 1 s.Parser_gen.Engine.committed_nts;
  check_bool "parses A C" true
    (Parser_gen.Engine.accepts p [ tok "A"; tok "C" ]);
  check_bool "rejects A A" false
    (Parser_gen.Engine.accepts p [ tok "A"; tok "A" ]);
  (* The VM compiles the same k = 2 decision into a D2 opcode probing the
     two-level side table, and must agree token for token. *)
  List.iter
    (fun toks ->
      let arr = Array.of_list (List.map tok (toks @ [ "EOF" ])) in
      Alcotest.check result_testable
        (Printf.sprintf "vm k2: %s" (String.concat " " toks))
        (Parser_gen.Engine.parse_tokens p arr)
        (Parser_gen.Engine.parse_tokens_vm p arr))
    [ [ "A"; "B" ]; [ "A"; "C" ]; [ "A"; "A" ]; [ "A" ]; [] ]

let test_ambiguous_falls_back () =
  (* FIRST_2 of both alternatives is {A B}: no bounded lookahead separates
     them, so the rule must keep backtracking — and still parse. *)
  let open Grammar.Builder in
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ nt "x"; t "D" ]; [ nt "y"; t "E" ] ];
        rule "x" [ [ t "A"; t "B" ] ];
        rule "y" [ [ t "A"; t "B"; t "C" ] ];
      ]
  in
  let p = build_engine g in
  let s = Parser_gen.Engine.summary p in
  Alcotest.(check int) "ambiguous points" 1 s.Parser_gen.Engine.ambiguous_points;
  let cls =
    List.find
      (fun c -> c.Parser_gen.Engine.nt_name = "s")
      s.Parser_gen.Engine.classes
  in
  check_bool "s not committed" false cls.Parser_gen.Engine.nt_committed;
  Alcotest.(check int) "s fallback points" 1 cls.Parser_gen.Engine.nt_fallbacks;
  (* x and y commit on their own; s consumes them through the memo path. *)
  check_bool "parses A B D" true
    (Parser_gen.Engine.accepts p [ tok "A"; tok "B"; tok "D" ]);
  check_bool "parses A B C E" true
    (Parser_gen.Engine.accepts p [ tok "A"; tok "B"; tok "C"; tok "E" ]);
  check_bool "rejects A B C D" false
    (Parser_gen.Engine.accepts p [ tok "A"; tok "B"; tok "C"; tok "D" ]);
  (* On the VM the references to [x]/[y] inside the uncommitted rule [s]
     never compile; the start entry drops straight into the memoized
     fallback and must reproduce the same results. *)
  List.iter
    (fun toks ->
      let arr = Array.of_list (List.map tok (toks @ [ "EOF" ])) in
      Alcotest.check result_testable
        (Printf.sprintf "vm fallback: %s" (String.concat " " toks))
        (Parser_gen.Engine.parse_tokens p arr)
        (Parser_gen.Engine.parse_tokens_vm p arr))
    [
      [ "A"; "B"; "D" ];
      [ "A"; "B"; "C"; "E" ];
      [ "A"; "B"; "C"; "D" ];
      [ "A" ];
      [];
    ]

let test_vm_choice_backtracking () =
  (* [z : B B | B B B] is ambiguous at k = 2 (both alternatives predict
     (B, B)); [s : A z C] is a single sequence, so [s] compiles and the
     reference to [z] becomes an FB opcode. On "A B B B C" the memoized
     fallback returns two derivation ends for [z] in priority order — the
     two-token end first — so the VM must push a choice point, fail at the
     MATCH of C, backtrack across the recorded stack depths, and succeed on
     the three-token end. *)
  let open Grammar.Builder in
  let g =
    grammar ~start:"s"
      [
        rule "s" [ [ t "A"; nt "z"; t "C" ] ];
        rule "z" [ [ t "B"; t "B" ]; [ t "B"; t "B"; t "B" ] ];
      ]
  in
  let p = build_engine g in
  (match Parser_gen.Engine.program p with
  | None -> Alcotest.fail "program must be compiled"
  | Some prog ->
    check_bool "start rule is compiled" true
      (Parser_gen.Program.start_entry prog >= 0);
    (* but z is not: exactly one compiled body *)
    Alcotest.(check int) "compiled rules" 1
      (Parser_gen.Program.compiled_nts prog));
  List.iter
    (fun (toks, accepted) ->
      let arr = Array.of_list (List.map tok (toks @ [ "EOF" ])) in
      let vm = Parser_gen.Engine.parse_tokens_vm p arr in
      check_bool
        (Printf.sprintf "vm acceptance: %s" (String.concat " " toks))
        accepted (Result.is_ok vm);
      Alcotest.check result_testable
        (Printf.sprintf "vm backtracking: %s" (String.concat " " toks))
        (Parser_gen.Engine.parse_tokens p arr)
        vm)
    [
      ([ "A"; "B"; "B"; "C" ], true);
      (* backtrack: first end (B B) fails at C, second (B B B) wins *)
      ([ "A"; "B"; "B"; "B"; "C" ], true);
      ([ "A"; "B"; "B"; "B"; "B"; "C" ], false);
      ([ "A"; "B"; "C" ], false);
      ([ "A"; "B"; "B"; "B" ], false);
    ]

let suite =
  List.concat_map
    (fun (d : Dialects.Dialect.t) ->
      let name = d.Dialects.Dialect.name in
      [
        Alcotest.test_case
          (Printf.sprintf
             "%s: committed = vm = memoized = reference (corpus + sampled)"
             name)
          `Quick
          (test_four_way_agreement name);
        Alcotest.test_case
          (Printf.sprintf "%s: left-factoring preserves CSTs and positions"
             name)
          `Quick
          (test_factoring_preserves name);
        Alcotest.test_case
          (Printf.sprintf "%s: ablations change nothing but speed" name)
          `Quick
          (test_ablation_agreement name);
        Alcotest.test_case
          (Printf.sprintf "%s: inlined grammar agrees across engines" name)
          `Quick
          (test_inlined_agreement name);
      ])
    Dialects.Dialect.all
  @ [
      Alcotest.test_case "unstamped tokens are re-interned" `Quick
        test_reinterning_boundary;
      Alcotest.test_case "k=2-resolvable grammar classifies committed" `Quick
        test_k2_commits;
      Alcotest.test_case "ambiguous grammar falls back to backtracking" `Quick
        test_ambiguous_falls_back;
      Alcotest.test_case "vm backtracks across fallback choice points" `Quick
        test_vm_choice_backtracking;
    ]
