(* Negative conformance — the rejection half of "exactly the selected
   subset": statements exercising features a dialect did not select must be
   rejected by that dialect's parser with a proper [parse_error] carrying a
   non-empty expected set (the corpus is constructed so rejection happens in
   the parser, not the scanner — unselected keywords simply lex as
   identifiers). The same statements must be accepted — or at least lex — in
   the full dialect, confirming the rejection is the tailoring's doing. *)

let check_bool = Alcotest.(check bool)

let generated =
  lazy
    (List.map
       (fun (d : Dialects.Dialect.t) ->
         match Core.generate_dialect d with
         | Ok g -> (d.Dialects.Dialect.name, g)
         | Error e ->
           Alcotest.failf "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
       Dialects.Dialect.all)

let parser_of name = List.assoc name (Lazy.force generated)

let test_unselected_rejected (name, statements) () =
  let g = parser_of name in
  List.iter
    (fun sql ->
      match Core.parse_cst g sql with
      | Ok _ ->
        Alcotest.failf "%s must reject unselected-feature statement: %s" name
          sql
      | Error (Core.Parse_error e) ->
        check_bool
          (Printf.sprintf "%s: non-empty expected set for: %s" name sql)
          true
          (e.Parser_gen.Engine.expected <> [])
      | Error other ->
        Alcotest.failf
          "%s: expected a parse error (not %a) for: %s — the corpus must \
           fail in the parser, not the scanner"
          name Core.pp_error other sql)
    statements

let test_unselected_statements_lex_everywhere () =
  (* The corpus promise: rejection is syntactic. Every statement scans
     cleanly in its target dialect. *)
  List.iter
    (fun (name, statements) ->
      let g = parser_of name in
      List.iter
        (fun sql ->
          check_bool
            (Printf.sprintf "%s: lexes cleanly: %s" name sql)
            true
            (Result.is_ok (Core.scan_tokens g sql)))
        statements)
    Corpus.unselected

let test_error_position_is_meaningful () =
  (* The furthest-failure position points into the statement, not at its
     start: the prefix up to the unselected construct parses. *)
  let g = parser_of "scql" in
  match Core.parse_cst g "SELECT balance FROM purse GROUP BY balance" with
  | Error (Core.Parse_error e) ->
    check_bool "error past the FROM clause" true
      (e.Parser_gen.Engine.pos.Lexing_gen.Token.offset > 20)
  | Ok _ -> Alcotest.fail "scql must reject GROUP BY"
  | Error other -> Alcotest.failf "expected a parse error, got %a" Core.pp_error other

let suite =
  List.map
    (fun ((name, statements) as entry) ->
      Alcotest.test_case
        (Printf.sprintf "%s rejects %d unselected-feature statements" name
           (List.length statements))
        `Quick
        (test_unselected_rejected entry))
    Corpus.unselected
  @ [
      Alcotest.test_case "unselected corpus lexes in its dialect" `Quick
        test_unselected_statements_lex_everywhere;
      Alcotest.test_case "rejection position is inside the statement" `Quick
        test_error_position_is_meaningful;
    ]
